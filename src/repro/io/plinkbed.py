"""PLINK binary ``.bed`` / ``.bim`` / ``.fam`` triples.

The on-disk format PLINK 1.9 (the paper's first comparator) operates on:

- ``.bed``: 3 magic bytes ``6C 1B 01`` (the trailing ``01`` = SNP-major),
  then per variant ``ceil(n_individuals / 4)`` bytes of 2-bit genotype
  codes, least-significant pair first: ``00`` hom-ref(A1), ``01`` missing,
  ``10`` het, ``11`` hom-alt(A2);
- ``.bim``: one tab-separated line per variant
  (chrom, id, cM, bp, allele1, allele2);
- ``.fam``: one line per individual (fid, iid, father, mother, sex, pheno).

:class:`~repro.encoding.genotypes.GenotypeMatrix` packs 32 genotypes per
little-endian ``uint64`` with the same code values and pair order, so its
byte view *is* the ``.bed`` payload — the writer slices it, the reader
re-pads it, with no per-genotype transcoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.encoding.genotypes import GenotypeMatrix, words_for_individuals

__all__ = ["PlinkDataset", "read_plink_bed", "write_plink_bed"]

_MAGIC = bytes([0x6C, 0x1B, 0x01])


@dataclass(frozen=True)
class PlinkDataset:
    """A parsed PLINK fileset: genotypes plus variant/sample metadata."""

    genotypes: GenotypeMatrix
    variant_ids: list[str]
    positions: np.ndarray
    sample_ids: list[str]


def write_plink_bed(
    prefix: str | Path,
    genotypes: GenotypeMatrix,
    *,
    positions: np.ndarray | None = None,
    variant_ids: list[str] | None = None,
    sample_ids: list[str] | None = None,
    chrom: str = "1",
) -> None:
    """Write ``<prefix>.bed`` / ``.bim`` / ``.fam``.

    Parameters
    ----------
    prefix:
        Path prefix (extensions appended).
    genotypes:
        Packed genotype matrix.
    positions, variant_ids, sample_ids:
        Optional metadata; defaults are synthesized.
    """
    prefix = Path(prefix)
    n_variants = genotypes.n_variants
    n_individuals = genotypes.n_individuals
    if positions is None:
        positions = np.arange(1, n_variants + 1, dtype=np.int64)
    else:
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size != n_variants:
            raise ValueError(f"{positions.size} positions for {n_variants} variants")
    if variant_ids is None:
        variant_ids = [f"snp{i}" for i in range(n_variants)]
    if sample_ids is None:
        sample_ids = [f"ind{i}" for i in range(n_individuals)]
    if len(variant_ids) != n_variants or len(sample_ids) != n_individuals:
        raise ValueError("metadata lengths do not match the genotype matrix")

    bytes_per_variant = (n_individuals + 3) // 4
    payload = (
        np.ascontiguousarray(genotypes.words)
        .view(np.uint8)
        .reshape(n_variants, -1)[:, :bytes_per_variant]
    )
    with open(prefix.with_suffix(".bed"), "wb") as fh:
        fh.write(_MAGIC)
        fh.write(payload.tobytes())
    bim_lines = [
        f"{chrom}\t{vid}\t0\t{int(pos)}\tA\tT"
        for vid, pos in zip(variant_ids, positions)
    ]
    prefix.with_suffix(".bim").write_text("\n".join(bim_lines) + "\n")
    fam_lines = [f"{sid}\t{sid}\t0\t0\t0\t-9" for sid in sample_ids]
    prefix.with_suffix(".fam").write_text("\n".join(fam_lines) + "\n")


def read_plink_bed(prefix: str | Path) -> PlinkDataset:
    """Read ``<prefix>.bed`` / ``.bim`` / ``.fam`` into a :class:`PlinkDataset`."""
    prefix = Path(prefix)
    for suffix in (".bed", ".bim", ".fam"):
        member = prefix.with_suffix(suffix)
        if not member.exists():
            raise FileNotFoundError(
                f"{member} not found; a PLINK fileset needs all three of "
                f"{prefix.with_suffix('.bed').name}/.bim/.fam"
            )
    bim_path = prefix.with_suffix(".bim")
    fam_path = prefix.with_suffix(".fam")
    bim_lines = bim_path.read_text().splitlines()
    fam_lines = fam_path.read_text().splitlines()
    n_variants = len(bim_lines)
    n_individuals = len(fam_lines)
    if n_variants == 0 or n_individuals == 0:
        raise ValueError("empty .bim or .fam file")
    variant_ids = []
    positions = np.empty(n_variants, dtype=np.int64)
    for idx, line in enumerate(bim_lines):
        fields = line.split()
        if len(fields) != 6:
            raise ValueError(
                f"{bim_path}:{idx + 1}: expected 6 fields "
                "(chrom, id, cM, bp, a1, a2), got "
                f"{len(fields)}: {line!r}"
            )
        variant_ids.append(fields[1])
        try:
            positions[idx] = int(fields[3])
        except ValueError:
            raise ValueError(
                f"{bim_path}:{idx + 1}: bp position must be an integer, "
                f"got {fields[3]!r}"
            ) from None
    sample_ids = []
    for idx, line in enumerate(fam_lines):
        fields = line.split()
        if len(fields) < 2:
            raise ValueError(
                f"{fam_path}:{idx + 1}: expected at least fid and iid "
                f"columns, got {line!r}"
            )
        sample_ids.append(fields[1])

    bed_path = prefix.with_suffix(".bed")
    raw = bed_path.read_bytes()
    if len(raw) < 3:
        raise ValueError(
            f"truncated .bed {bed_path}: only {len(raw)} bytes, shorter "
            "than the 3-byte magic"
        )
    if raw[:3] != _MAGIC:
        if raw[:2] == _MAGIC[:2] and raw[2] == 0x00:
            raise ValueError(
                f"{bed_path} is a sample-major .bed (third byte 00); only "
                "SNP-major v1 files (6c 1b 01) are supported — rewrite it "
                "with a modern PLINK"
            )
        raise ValueError(
            f"bad .bed magic {raw[:3].hex(' ')!r} in {bed_path} "
            "(expected '6c 1b 01'); not a PLINK v1 SNP-major file"
        )
    bytes_per_variant = (n_individuals + 3) // 4
    expected = 3 + n_variants * bytes_per_variant
    if len(raw) != expected:
        detail = "truncated" if len(raw) < expected else "has trailing bytes"
        raise ValueError(
            f"{bed_path} {detail}: size {len(raw)} bytes but .bim/.fam "
            f"imply {expected} (3-byte magic + {n_variants} variants x "
            f"{bytes_per_variant} bytes for {n_individuals} individuals)"
        )
    payload = np.frombuffer(raw, dtype=np.uint8, offset=3).reshape(
        n_variants, bytes_per_variant
    )
    n_words = words_for_individuals(n_individuals)
    padded = np.zeros((n_variants, n_words * 8), dtype=np.uint8)
    padded[:, :bytes_per_variant] = payload
    words = padded.view(np.uint64).reshape(n_variants, n_words)
    # Zero any padding bit-pairs inside the last byte (PLINK leaves them 00,
    # but be safe against foreign writers).
    tail = n_individuals % 32
    if tail:
        mask = np.uint64((1 << (2 * tail)) - 1)
        words[:, -1] &= mask
    genotypes = GenotypeMatrix(
        words=np.ascontiguousarray(words), n_individuals=n_individuals
    )
    return PlinkDataset(
        genotypes=genotypes,
        variant_ids=variant_ids,
        positions=positions,
        sample_ids=sample_ids,
    )
