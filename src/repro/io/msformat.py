"""Hudson ``ms`` output format (Hudson 2002): reader and writer.

The lingua franca of coalescent simulators and the input format of
OmegaPlus. One file holds a command-line echo, a seed line, and one or more
replicates::

    ms 4 2 -t 5.0
    12345 23456 34567

    //
    segsites: 3
    positions: 0.1234 0.5678 0.9012
    010
    110
    001
    000

    //
    segsites: 0

Each haplotype row is a string of ``0``/``1`` characters over the
replicate's segregating sites; positions are fractions of the locus.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["MsReplicate", "read_ms", "write_ms"]


@dataclass(frozen=True)
class MsReplicate:
    """One ``ms`` replicate: haplotypes ``(n_samples, segsites)`` + positions."""

    haplotypes: np.ndarray
    positions: np.ndarray

    @property
    def segsites(self) -> int:
        """Number of segregating sites."""
        return self.haplotypes.shape[1]


def write_ms(
    path: str | Path,
    replicates: list[MsReplicate] | list[tuple[np.ndarray, np.ndarray]],
    *,
    command: str | None = None,
    seeds: tuple[int, int, int] = (1, 2, 3),
) -> None:
    """Write replicates in ``ms`` format.

    Parameters
    ----------
    path:
        Output file.
    replicates:
        :class:`MsReplicate` objects or ``(haplotypes, positions)`` tuples.
    command:
        Command-line echo for the header; synthesized when omitted.
    seeds:
        The three-seed line ``ms`` emits.
    """
    normalized: list[MsReplicate] = []
    for rep in replicates:
        if isinstance(rep, MsReplicate):
            normalized.append(rep)
        else:
            haps, pos = rep
            normalized.append(
                MsReplicate(
                    haplotypes=np.asarray(haps, dtype=np.uint8),
                    positions=np.asarray(pos, dtype=np.float64),
                )
            )
    if not normalized:
        raise ValueError("need at least one replicate")
    sample_counts = {
        rep.haplotypes.shape[0] for rep in normalized if rep.segsites
    }
    if len(sample_counts) > 1:
        raise ValueError("all replicates must have the same sample count")
    n_samples = sample_counts.pop() if sample_counts else 0
    for rep in normalized:
        if rep.positions.size != rep.segsites:
            raise ValueError(
                f"replicate has {rep.segsites} sites but "
                f"{rep.positions.size} positions"
            )
    if command is None:
        command = f"ms {n_samples} {len(normalized)}"
    buf = io.StringIO()
    buf.write(command + "\n")
    buf.write(" ".join(str(s) for s in seeds) + "\n")
    for rep in normalized:
        buf.write("\n//\n")
        buf.write(f"segsites: {rep.segsites}\n")
        if rep.segsites:
            buf.write(
                "positions: "
                + " ".join(f"{p:.6f}" for p in rep.positions)
                + "\n"
            )
            for row in rep.haplotypes:
                buf.write("".join("1" if x else "0" for x in row) + "\n")
    Path(path).write_text(buf.getvalue())


def read_ms(path: str | Path) -> list[MsReplicate]:
    """Parse an ``ms`` output file into replicates.

    Tolerates the variations real ``ms``-family tools produce: blank lines
    anywhere, replicates with ``segsites: 0`` (no positions/haplotypes),
    and arbitrary header content before the first ``//``.
    """
    lines = Path(path).read_text().splitlines()
    replicates: list[MsReplicate] = []
    idx = 0
    n = len(lines)
    while idx < n:
        if lines[idx].strip() != "//":
            idx += 1
            continue
        idx += 1
        # segsites line (skip blanks)
        while idx < n and not lines[idx].strip():
            idx += 1
        if idx >= n or not lines[idx].startswith("segsites:"):
            raise ValueError(f"expected 'segsites:' after '//' (line {idx + 1})")
        segsites = int(lines[idx].split(":", 1)[1])
        idx += 1
        if segsites == 0:
            replicates.append(
                MsReplicate(
                    haplotypes=np.zeros((0, 0), dtype=np.uint8),
                    positions=np.empty(0),
                )
            )
            continue
        while idx < n and not lines[idx].strip():
            idx += 1
        if idx >= n or not lines[idx].startswith("positions:"):
            raise ValueError(f"expected 'positions:' (line {idx + 1})")
        positions = np.array(
            [float(tok) for tok in lines[idx].split(":", 1)[1].split()]
        )
        if positions.size != segsites:
            raise ValueError(
                f"positions count {positions.size} != segsites {segsites}"
            )
        idx += 1
        rows = []
        while idx < n:
            stripped = lines[idx].strip()
            if not stripped or stripped == "//":
                break
            if set(stripped) - {"0", "1"}:
                raise ValueError(
                    f"haplotype line {idx + 1} contains non-binary characters"
                )
            if len(stripped) != segsites:
                raise ValueError(
                    f"haplotype line {idx + 1} has {len(stripped)} sites, "
                    f"expected {segsites}"
                )
            rows.append([1 if ch == "1" else 0 for ch in stripped])
            idx += 1
        if not rows:
            raise ValueError("replicate with segsites > 0 but no haplotypes")
        replicates.append(
            MsReplicate(
                haplotypes=np.array(rows, dtype=np.uint8), positions=positions
            )
        )
    if not replicates:
        raise ValueError(f"no '//' replicate delimiters found in {path}")
    return replicates
