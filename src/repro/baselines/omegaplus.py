"""OmegaPlus-style comparator: ω scan with on-demand per-pair LD.

OmegaPlus (Alachiotis, Stamatakis & Pavlidis 2012) detects selective sweeps
by maximizing the ω statistic on a grid of genomic positions. Its LD engine
is *demand-driven*: only the r² values inside some evaluation's window are
ever computed (the paper's Section VI notes it performed 49.4 M of the 50 M
pairwise computations on dataset A for this reason), with each value produced
by a popcount inner loop over the pair's packed words — the paper further
upgraded it to the same 64-bit popcount the GEMM kernel uses (footnote 5).

This module reproduces that engine shape:

- LD values are computed per pair (one AND+POPCNT pass over the two SNPs'
  words) the first time a window needs them, then cached, so work matches
  OmegaPlus's "compute only what ω needs, once";
- the scan reports how many pairwise LD evaluations were actually performed,
  regenerating the paper's 49.4 M / 49.9 M vs 50 M accounting;
- ω maximization over splits reuses :mod:`repro.analysis.omega`.

The GEMM-accelerated equivalent — one blocked GEMM, then cheap ω reductions
— is :func:`repro.analysis.omega.omega_scan_from_ld`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.omega import evaluate_grid_point
from repro.core.ldmatrix import as_bitmatrix
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["OmegaPlusResult", "PairwiseLDCache", "omegaplus_scan"]


class PairwiseLDCache:
    """Demand-driven per-pair r² evaluator over a packed genomic matrix.

    Each first request for a pair runs one AND + POPCNT pass over the pair's
    packed words (the OmegaPlus inner kernel); repeats hit the cache. The
    evaluation counter is the scan's work metric.
    """

    def __init__(self, matrix: BitMatrix):
        if matrix.n_samples == 0:
            raise ValueError("LD undefined for zero samples")
        self._words = matrix.words
        self._inv_n = 1.0 / matrix.n_samples
        self._freqs = matrix.allele_frequencies()
        self._cache: dict[tuple[int, int], float] = {}
        self.evaluations = 0

    def r2(self, i: int, j: int) -> float:
        """r² between SNPs *i* and *j* (NaN when undefined)."""
        key = (i, j) if i <= j else (j, i)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.evaluations += 1
        joint = int(np.bitwise_count(self._words[i] & self._words[j]).sum())
        p, q = self._freqs[i], self._freqs[j]
        denom = p * q * (1.0 - p) * (1.0 - q)
        if denom <= 0.0:
            value = float("nan")
        else:
            d = joint * self._inv_n - p * q
            value = d * d / denom
        self._cache[key] = value
        return value

    def window_matrix(self, lo: int, hi: int) -> np.ndarray:
        """r² submatrix for SNPs ``[lo, hi)``, filling cache misses per pair."""
        size = hi - lo
        out = np.zeros((size, size), dtype=np.float64)
        for a in range(size):
            for b in range(a + 1, size):
                out[a, b] = out[b, a] = self.r2(lo + a, lo + b)
        return out


@dataclass(frozen=True)
class OmegaPlusResult:
    """Output of an OmegaPlus-style scan.

    Attributes
    ----------
    grid:
        Genomic coordinates of the evaluation grid.
    omegas:
        Maximized ω per grid position.
    best_splits:
        Global SNP index of the best left-flank end per position (−1 where
        the window was too small).
    ld_evaluations:
        Number of distinct pairwise LD values actually computed — the
        paper's "49.4 M of 50 M" accounting.
    """

    grid: np.ndarray
    omegas: np.ndarray
    best_splits: np.ndarray
    ld_evaluations: int

    @property
    def peak_position(self) -> float:
        """Grid coordinate of the maximum ω (sweep candidate location)."""
        return float(self.grid[int(np.argmax(self.omegas))])


def omegaplus_scan(
    data: BitMatrix | np.ndarray,
    positions: np.ndarray | None = None,
    *,
    grid_size: int = 10,
    max_window: int = 100,
    search: str = "split",
) -> OmegaPlusResult:
    """ω-statistic sweep scan with demand-driven per-pair LD (OmegaPlus style).

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    positions:
        Monotonic genomic coordinates per SNP; defaults to SNP indices.
    grid_size:
        Number of equally spaced evaluation positions spanning the region.
    max_window:
        Maximum SNPs per flank of each evaluation window.
    search:
        ``"split"`` or ``"flanks"`` — see
        :func:`repro.analysis.omega.evaluate_grid_point`.
    """
    matrix = as_bitmatrix(data)
    n_snps = matrix.n_snps
    if positions is None:
        positions = np.arange(n_snps, dtype=np.float64)
    else:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.size != n_snps:
            raise ValueError(
                f"got {positions.size} positions for {n_snps} SNPs"
            )
        if np.any(np.diff(positions) < 0):
            raise ValueError("positions must be sorted ascending")
    if grid_size <= 0:
        raise ValueError(f"grid_size must be positive, got {grid_size}")
    if n_snps == 0:
        empty = np.array([])
        return OmegaPlusResult(empty, empty, empty.astype(np.int64), 0)

    cache = PairwiseLDCache(matrix)
    grid = np.linspace(positions[0], positions[-1], grid_size)
    omegas = np.zeros(grid_size)
    splits = np.full(grid_size, -1, dtype=np.int64)
    for g, center in enumerate(grid):
        mid = int(np.searchsorted(positions, center))
        lo = max(0, mid - max_window)
        hi = min(n_snps, mid + max_window)
        window = cache.window_matrix(lo, hi)
        omega, local_split = evaluate_grid_point(
            window, mid - lo, search, max_window
        )
        omegas[g] = omega
        if local_split >= 0:
            splits[g] = lo + local_split
    return OmegaPlusResult(
        grid=grid,
        omegas=omegas,
        best_splits=splits,
        ld_evaluations=cache.evaluations,
    )
