"""Baseline LD implementations the paper compares against (Section VI).

Three comparators, re-implemented from scratch so the performance comparison
can be regenerated:

- :mod:`repro.baselines.naive` — the per-pair vector-operation formulation of
  the paper's Section II-B pseudocode (what you get *without* casting LD as a
  matrix multiplication).
- :mod:`repro.baselines.plink` — a PLINK 1.9-style kernel: 2-bit packed
  *genotypes*, per-pair mask/AND/POPCNT extraction of the 3×3 genotype
  table, dosage-correlation r², full N(N+1)/2 traversal.
- :mod:`repro.baselines.omegaplus` — an OmegaPlus-style scan: ω-statistic
  sweep detection that computes only the region-restricted LD values each ω
  evaluation needs, with the 64-bit popcount inner step.

All three share the per-pair traversal style that the paper identifies as the
inefficiency; the GEMM path in :mod:`repro.core` replaces it wholesale.
"""

from repro.baselines.naive import naive_ld_matrix, naive_ld_matrix_scalar
from repro.baselines.omegaplus import OmegaPlusResult, omegaplus_scan
from repro.baselines.plink import plink_pairwise_counts, plink_r2_matrix

__all__ = [
    "naive_ld_matrix",
    "naive_ld_matrix_scalar",
    "OmegaPlusResult",
    "omegaplus_scan",
    "plink_pairwise_counts",
    "plink_r2_matrix",
]
