"""PLINK 1.9-style pairwise LD kernel (the paper's first comparator).

PLINK 1.9 (Chang et al. 2015) computes pairwise r² on *genotypes*: diploid
individuals packed at 2 bits per genotype (the ``.bed`` encoding), with the
per-pair joint genotype table extracted by mask/AND/POPCNT word operations
and r² derived from the table. The paper contrasts this per-pair traversal
(Section VI: "the focus of PLINK 1.9 is on genotypes") with its SNP-major
GEMM; both compute all N(N+1)/2 values of the region.

This module reproduces that design:

- input is a packed :class:`~repro.encoding.genotypes.GenotypeMatrix`;
- per variant, two one-bit-per-individual planes are derived once
  (``carrier`` = carries ≥1 alt allele, ``homalt`` = carries 2, ``valid`` =
  non-missing), the same precomputation PLINK performs when loading;
- per *pair*, the 3×3 genotype-count table comes from joint popcounts of
  plane intersections (:func:`plink_pairwise_counts`);
- r² is the squared Pearson correlation of allele dosages computed from the
  table, PLINK's ``--r2`` default for unphased data.

The traversal is a Python loop over pairs with word-vector popcounts inside
— per-pair work identical in kind to PLINK's kernel, with no cross-pair
reuse, which is exactly the property the GEMM approach removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.genotypes import GenotypeMatrix

__all__ = ["PlinkPlanes", "plink_pairwise_counts", "plink_r2_matrix", "prepare_planes"]


@dataclass(frozen=True)
class PlinkPlanes:
    """Per-variant one-bit-per-individual planes derived from 2-bit genotypes.

    Attributes
    ----------
    carrier:
        ``(n_variants, n_words)``: bit set iff individual carries ≥1 alt
        allele (het or hom-alt).
    homalt:
        Bit set iff individual is homozygous alternate.
    valid:
        Bit set iff the genotype is present (not missing).
    n_individuals:
        Valid bit positions per variant.
    """

    carrier: np.ndarray
    homalt: np.ndarray
    valid: np.ndarray
    n_individuals: int


def prepare_planes(genotypes: GenotypeMatrix) -> PlinkPlanes:
    """Derive the per-variant bit planes the pairwise kernel consumes.

    In the 2-bit encoding (00 hom-ref, 01 missing, 10 het, 11 hom-alt) the
    compacted high bit marks carriers, the compacted low bit marks
    missing-or-homalt; ``homalt = high & low`` and ``missing = low & ~high``.
    """
    high = genotypes.high_bits()
    low = genotypes.low_bits()
    homalt = high & low
    missing = low & ~high
    n = genotypes.n_individuals
    n_words = high.shape[1]
    # Mask of in-range individual bits (shared by every variant).
    full = np.full(n_words, ~np.uint64(0), dtype=np.uint64)
    tail = n % 64
    if n_words:
        if tail:
            full[-1] = np.uint64((1 << tail) - 1)
        if n == 0:
            full[:] = 0
    valid = (~missing) & full
    return PlinkPlanes(
        carrier=high & valid, homalt=homalt & valid, valid=valid, n_individuals=n
    )


def plink_pairwise_counts(
    planes: PlinkPlanes, i: int, j: int
) -> tuple[np.ndarray, int]:
    """Joint 3×3 genotype-count table for variants *i* and *j*.

    Returns ``(table, n_valid)`` where ``table[a, b]`` counts individuals
    with dosage *a* at variant *i* and *b* at variant *j* (dosages 0/1/2),
    over individuals valid at both variants. Nine joint popcounts plus the
    marginal popcounts, all on packed words — the PLINK kernel shape.
    """
    valid = planes.valid[i] & planes.valid[j]
    n_valid = int(np.bitwise_count(valid).sum())

    def counts_for(variant: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        carrier = planes.carrier[variant] & valid
        homalt = planes.homalt[variant] & valid
        het = carrier & ~homalt
        homref = valid & ~carrier
        return homref, het, homalt

    rows = counts_for(i)
    cols = counts_for(j)
    table = np.empty((3, 3), dtype=np.int64)
    for a, row_mask in enumerate(rows):
        for b, col_mask in enumerate(cols):
            table[a, b] = int(np.bitwise_count(row_mask & col_mask).sum())
    return table, n_valid


def _r2_from_table(table: np.ndarray, n_valid: int) -> float:
    """Squared dosage correlation from a 3×3 joint genotype table."""
    if n_valid == 0:
        return float("nan")
    dosages = np.array([0.0, 1.0, 2.0])
    n = float(n_valid)
    row_marg = table.sum(axis=1)
    col_marg = table.sum(axis=0)
    mean_x = float(row_marg @ dosages) / n
    mean_y = float(col_marg @ dosages) / n
    e_xy = float(dosages @ table @ dosages) / n
    var_x = float(row_marg @ (dosages**2)) / n - mean_x**2
    var_y = float(col_marg @ (dosages**2)) / n - mean_y**2
    denom = var_x * var_y
    if denom <= 0.0:
        return float("nan")
    cov = e_xy - mean_x * mean_y
    return cov * cov / denom


def plink_r2_matrix(
    genotypes: GenotypeMatrix, *, undefined: float = np.nan
) -> np.ndarray:
    """All-pairs genotype r² with the PLINK-style per-pair kernel.

    Traverses all N(N+1)/2 variant pairs (diagonal included, as PLINK's
    region mode does); monomorphic or all-missing pairs yield *undefined*.
    """
    planes = prepare_planes(genotypes)
    n = genotypes.n_variants
    r2 = np.empty((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1):
            table, n_valid = plink_pairwise_counts(planes, i, j)
            value = _r2_from_table(table, n_valid)
            if np.isnan(value):
                value = undefined
            r2[i, j] = r2[j, i] = value
    return r2
