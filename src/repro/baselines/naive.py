"""Naive per-pair LD: the paper's Section II-B pseudocode, verbatim.

The paper motivates the GEMM formulation by first showing the obvious
implementation::

    for i in range(n):
        for j in range(n):
            D[i, j] = (1/N) s_iᵀ s_j  −  (1/N²) (s_iᵀ s_i)(s_jᵀ s_j)

"each SNP is treated as a column vector, and the required computations ...
are cast in terms of vector operations. This approach is highly inefficient"
— every pair re-streams both SNP columns through the memory hierarchy with no
reuse.

Two fidelity levels are provided:

``naive_ld_matrix``
    Per-pair *vector* operations (one dot product per pair over dense
    columns) — the literal pseudocode. Exploits the D-matrix symmetry only,
    as the pseudocode's loop bounds allow.
``naive_ld_matrix_scalar``
    Fully scalar inner loops (one Python multiply-add per sample per pair);
    the pedagogical floor, usable only on tiny inputs.
"""

from __future__ import annotations

import numpy as np

from repro.core.stats import r_squared_matrix
from repro.encoding.bitmatrix import BitMatrix
from repro.util.validation import check_binary

__all__ = ["naive_ld_matrix", "naive_ld_matrix_scalar"]


def _to_dense(data: BitMatrix | np.ndarray) -> np.ndarray:
    if isinstance(data, BitMatrix):
        return data.to_dense()
    return check_binary(data, "genomic matrix")


def naive_ld_matrix(
    data: BitMatrix | np.ndarray,
    stat: str = "r2",
    *,
    undefined: float = np.nan,
) -> np.ndarray:
    """All-pairs LD via one vector dot product per SNP pair (Section II-B).

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix` (unpacked internally — the naive method works on
        dense columns).
    stat:
        ``"r2"`` or ``"D"``.
    """
    dense = _to_dense(data).astype(np.float64)
    n_samples, n_snps = dense.shape
    if n_samples == 0:
        raise ValueError("LD undefined for zero samples")
    h = np.empty((n_snps, n_snps), dtype=np.float64)
    inv_n = 1.0 / n_samples
    # The pseudocode's doubly nested per-pair loop; symmetry halves it.
    for i in range(n_snps):
        s_i = dense[:, i]
        for j in range(i + 1):
            h[i, j] = h[j, i] = float(s_i @ dense[:, j]) * inv_n
    p = np.array([float(dense[:, i] @ dense[:, i]) * inv_n for i in range(n_snps)])
    if stat == "D":
        return h - np.outer(p, p)
    if stat == "r2":
        return r_squared_matrix(h, p, undefined=undefined)
    raise ValueError(f"unknown LD statistic {stat!r}; choose 'r2' or 'D'")


def naive_ld_matrix_scalar(
    data: BitMatrix | np.ndarray,
    stat: str = "r2",
    *,
    undefined: float = np.nan,
) -> np.ndarray:
    """All-pairs LD with fully scalar Python arithmetic (reference floor)."""
    dense = _to_dense(data)
    n_samples, n_snps = dense.shape
    if n_samples == 0:
        raise ValueError("LD undefined for zero samples")
    cols = [list(map(int, dense[:, i])) for i in range(n_snps)]
    h = np.empty((n_snps, n_snps), dtype=np.float64)
    inv_n = 1.0 / n_samples
    for i in range(n_snps):
        col_i = cols[i]
        for j in range(i + 1):
            col_j = cols[j]
            acc = 0
            for k in range(n_samples):
                acc += col_i[k] * col_j[k]
            h[i, j] = h[j, i] = acc * inv_n
    p = np.array([sum(cols[i]) * inv_n for i in range(n_snps)])
    if stat == "D":
        return h - np.outer(p, p)
    if stat == "r2":
        return r_squared_matrix(h, p, undefined=undefined)
    raise ValueError(f"unknown LD statistic {stat!r}; choose 'r2' or 'D'")
