"""Population-count implementations over packed 64-bit words.

The LD micro-kernel of the paper reduces the inner product of two binary SNP
vectors to ``POPCNT(s_i & s_j)`` summed over 64-bit machine words
(Section IV-A).  On x86 the paper uses the hardware ``POPCNT`` instruction and
cites measurements (its reference [17]) showing that software popcounts —
lookup tables and SWAR bit tricks — are slower.  This module reproduces that
design space so the choice can be benchmarked as an ablation:

``popcount_hardware``
    :func:`numpy.bitwise_count`, which lowers to the hardware instruction on
    x86 — the stand-in for the intrinsic the paper uses.
``popcount_lut8`` / ``popcount_lut16``
    Byte- and halfword-indexed lookup tables, the classic software approach.
``popcount_swar``
    The branch-free "SWAR" divide-and-conquer popcount (Hacker's Delight,
    Fig. 5-2), vectorized over the word array.
``popcount_naive``
    Per-bit extraction; the pedagogical lower bound.

All functions accept an array of ``uint64`` words (any shape) and return the
per-word set-bit counts as ``uint64`` with the same shape, so they are
interchangeable inside the micro-kernel.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = [
    "POPCOUNT_IMPLEMENTATIONS",
    "popcount_hardware",
    "popcount_lut8",
    "popcount_lut16",
    "popcount_naive",
    "popcount_swar",
    "popcount_u64",
    "scalar_popcount",
]

# 8-bit lookup table: popcount of every byte value.
_LUT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint64)

# 16-bit lookup table, built from the 8-bit one.
_LUT16 = (_LUT8[np.arange(65536) & 0xFF] + _LUT8[np.arange(65536) >> 8]).astype(
    np.uint64
)

# SWAR masks (Hacker's Delight, Figure 5-2), as uint64 scalars.
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_SH1 = np.uint64(1)
_SH2 = np.uint64(2)
_SH4 = np.uint64(4)
_SH56 = np.uint64(56)


def _as_u64(words: np.ndarray) -> np.ndarray:
    words = np.asarray(words)
    if words.dtype != np.uint64:
        raise TypeError(f"expected uint64 words, got dtype {words.dtype}")
    return words


def popcount_hardware(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via :func:`numpy.bitwise_count` (hardware POPCNT).

    This is the production implementation used by the micro-kernel; the
    others exist for the software-popcount ablation.
    """
    return np.bitwise_count(_as_u64(words)).astype(np.uint64)


def popcount_lut8(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via an 8-bit lookup table (8 table probes/word)."""
    words = _as_u64(words)
    b = words.reshape(-1).view(np.uint8)
    counts = _LUT8[b].reshape(-1, 8).sum(axis=1, dtype=np.uint64)
    return counts.reshape(words.shape)


def popcount_lut16(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via a 16-bit lookup table (4 table probes/word)."""
    words = _as_u64(words)
    h = words.reshape(-1).view(np.uint16)
    counts = _LUT16[h].reshape(-1, 4).sum(axis=1, dtype=np.uint64)
    return counts.reshape(words.shape)


def popcount_swar(words: np.ndarray) -> np.ndarray:
    """Branch-free SWAR popcount (Hacker's Delight, Fig. 5-2), vectorized."""
    x = _as_u64(words).copy()
    x -= (x >> _SH1) & _M1
    x = (x & _M2) + ((x >> _SH2) & _M2)
    x = (x + (x >> _SH4)) & _M4
    return (x * _H01) >> _SH56


def popcount_naive(words: np.ndarray) -> np.ndarray:
    """Per-bit popcount: shift out each of the 64 bits. Pedagogical only."""
    x = _as_u64(words)
    counts = np.zeros(x.shape, dtype=np.uint64)
    one = np.uint64(1)
    for bit in range(64):
        counts += (x >> np.uint64(bit)) & one
    return counts


def popcount_u64(words: np.ndarray, *, impl: str = "hardware") -> np.ndarray:
    """Per-word popcount with a selectable implementation.

    Parameters
    ----------
    words:
        Array of ``uint64`` machine words (any shape).
    impl:
        One of ``"hardware"``, ``"lut8"``, ``"lut16"``, ``"swar"``,
        ``"naive"`` — see :data:`POPCOUNT_IMPLEMENTATIONS`.
    """
    try:
        fn = POPCOUNT_IMPLEMENTATIONS[impl]
    except KeyError:
        raise ValueError(
            f"unknown popcount implementation {impl!r}; "
            f"choose from {sorted(POPCOUNT_IMPLEMENTATIONS)}"
        ) from None
    return fn(words)


def scalar_popcount(word: int) -> int:
    """Popcount of a single Python integer (the pure-Python micro-kernel op)."""
    if word < 0:
        raise ValueError("scalar_popcount expects a non-negative integer")
    return int(word).bit_count()


POPCOUNT_IMPLEMENTATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "hardware": popcount_hardware,
    "lut8": popcount_lut8,
    "lut16": popcount_lut16,
    "swar": popcount_swar,
    "naive": popcount_naive,
}
