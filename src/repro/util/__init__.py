"""Utility substrate: popcount implementations, validation, timing.

The popcount survey mirrors the paper's discussion (Section IV-A and its
reference [17]) of software population-count implementations versus the
hardware ``POPCNT`` instruction: on this substrate, :func:`numpy.bitwise_count`
plays the role of the hardware instruction while the lookup-table and SWAR
variants reproduce the software alternatives the paper rejects.
"""

from repro.util.popcount import (
    POPCOUNT_IMPLEMENTATIONS,
    popcount_hardware,
    popcount_lut8,
    popcount_lut16,
    popcount_naive,
    popcount_swar,
    popcount_u64,
    scalar_popcount,
)
from repro.util.timing import Timer, format_seconds
from repro.util.validation import (
    check_binary,
    check_positive,
    check_shape_compatible,
    require,
)

__all__ = [
    "POPCOUNT_IMPLEMENTATIONS",
    "popcount_hardware",
    "popcount_lut8",
    "popcount_lut16",
    "popcount_naive",
    "popcount_swar",
    "popcount_u64",
    "scalar_popcount",
    "Timer",
    "format_seconds",
    "check_binary",
    "check_positive",
    "check_shape_compatible",
    "require",
]
