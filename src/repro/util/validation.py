"""Argument-validation helpers shared across the library.

These helpers keep public entry points strict about their inputs (binary
matrices, positive sizes, compatible shapes) while keeping the error messages
uniform. Inner kernels never re-validate — validation happens once at the
public-API boundary, which matters for the hot paths.
"""

from __future__ import annotations

import numpy as np

__all__ = ["require", "check_binary", "check_positive", "check_shape_compatible"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_binary(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that *matrix* is 2-D and contains only 0/1 values.

    Returns the input as a C-contiguous ``uint8`` array (a view when the
    input already satisfies that, a copy otherwise).
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.dtype == np.bool_:
        arr = arr.astype(np.uint8)
    if not np.isin(arr, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0/1 entries (infinite-sites model)")
    return np.ascontiguousarray(arr, dtype=np.uint8)


def check_positive(value: int, name: str) -> int:
    """Validate that *value* is a positive integer and return it as ``int``."""
    ivalue = int(value)
    if ivalue <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return ivalue


def check_shape_compatible(
    a: np.ndarray, b: np.ndarray, axis_a: int, axis_b: int, what: str
) -> None:
    """Validate that ``a.shape[axis_a] == b.shape[axis_b]``."""
    if a.shape[axis_a] != b.shape[axis_b]:
        raise ValueError(
            f"incompatible {what}: {a.shape[axis_a]} != {b.shape[axis_b]} "
            f"(shapes {a.shape} and {b.shape})"
        )
