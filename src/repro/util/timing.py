"""Lightweight wall-clock timing used by the benchmark harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "format_seconds"]


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single :class:`Timer` can be entered repeatedly; ``elapsed`` accumulates
    across uses, which is how the benchmark drivers time repeated kernel
    invocations without per-call overhead bookkeeping.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None, "Timer exited without being entered"
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    @property
    def best(self) -> float:
        """Fastest single lap (the conventional micro-benchmark statistic)."""
        if not self.laps:
            raise ValueError("Timer has no completed laps")
        return min(self.laps)

    def reset(self) -> None:
        """Discard accumulated time and laps."""
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None


def format_seconds(seconds: float) -> str:
    """Render a duration with a sensible unit (ns/us/ms/s)."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"
