"""Coalescent simulation under piecewise-constant demographic histories.

The neutral generator in :mod:`repro.simulate.coalescent` assumes a
constant population size. Real panels (the paper's 1000 Genomes Dataset A
above all) carry the imprint of bottlenecks and expansions, which reshape
both the site-frequency spectrum and LD levels. This module adds the
standard time-rescaling construction: with relative population size
``λ(t)`` (piecewise constant), the coalescence rate of *k* lineages at
time *t* is ``k(k−1) / (2 λ(t))``, so waiting times are drawn per epoch
and carried across epoch boundaries.

Behavioural anchors (tested):

- a bottleneck (small ``λ`` near the present) shortens the tree, reducing
  diversity and skewing the SFS toward intermediate frequencies;
- an expansion (large ``λ`` near the present, small in the past) produces
  the star-like genealogies and singleton excess typical of human data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulate.coalescent import CoalescentSample, _leaf_sets

__all__ = ["Epoch", "PopulationHistory", "simulate_coalescent_demography"]


@dataclass(frozen=True)
class Epoch:
    """One demographic epoch.

    Attributes
    ----------
    start_time:
        Epoch start, backwards in time, in 2N₀-generation units (the first
        epoch must start at 0).
    relative_size:
        Population size during the epoch relative to N₀.
    """

    start_time: float
    relative_size: float

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError(f"epoch start must be >= 0, got {self.start_time}")
        if self.relative_size <= 0:
            raise ValueError(
                f"relative size must be positive, got {self.relative_size}"
            )


@dataclass(frozen=True)
class PopulationHistory:
    """Piecewise-constant population-size history, present → past."""

    epochs: tuple[Epoch, ...]

    def __post_init__(self) -> None:
        if not self.epochs:
            raise ValueError("history needs at least one epoch")
        if self.epochs[0].start_time != 0.0:
            raise ValueError("the first epoch must start at time 0")
        starts = [epoch.start_time for epoch in self.epochs]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError("epoch start times must be strictly increasing")

    @classmethod
    def constant(cls, relative_size: float = 1.0) -> "PopulationHistory":
        """A constant-size history (the plain Kingman coalescent)."""
        return cls(epochs=(Epoch(0.0, relative_size),))

    @classmethod
    def bottleneck(
        cls, *, depth: float = 0.1, start: float = 0.05, end: float = 0.5
    ) -> "PopulationHistory":
        """Size drops to *depth* between *start* and *end* (backwards time)."""
        if not 0 < start < end:
            raise ValueError("need 0 < start < end")
        return cls(
            epochs=(Epoch(0.0, 1.0), Epoch(start, depth), Epoch(end, 1.0))
        )

    @classmethod
    def expansion(
        cls, *, factor: float = 10.0, onset: float = 0.1
    ) -> "PopulationHistory":
        """Recent size is *factor*× the ancestral size, from *onset* ago."""
        if factor <= 0 or onset <= 0:
            raise ValueError("factor and onset must be positive")
        return cls(epochs=(Epoch(0.0, factor), Epoch(onset, 1.0)))

    def size_at(self, time: float) -> float:
        """Relative population size at backwards time *time*."""
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        size = self.epochs[0].relative_size
        for epoch in self.epochs:
            if epoch.start_time <= time:
                size = epoch.relative_size
            else:
                break
        return size

    def draw_coalescence_time(
        self, current_time: float, k: int, rng: np.random.Generator
    ) -> float:
        """Next coalescence time for *k* lineages, from *current_time*.

        Integrates the rate ``k(k−1)/(2λ)`` across epochs: an exponential
        deviate is spent epoch by epoch until it is exhausted.
        """
        if k < 2:
            raise ValueError("coalescence needs >= 2 lineages")
        rate_factor = k * (k - 1) / 2.0
        budget = rng.exponential(1.0)  # unit-rate exponential to spend
        time = current_time
        epoch_starts = [epoch.start_time for epoch in self.epochs]
        idx = max(
            i for i, start in enumerate(epoch_starts) if start <= time
        )
        while True:
            size = self.epochs[idx].relative_size
            rate = rate_factor / size
            next_boundary = (
                self.epochs[idx + 1].start_time
                if idx + 1 < len(self.epochs)
                else np.inf
            )
            span = next_boundary - time
            needed = budget / rate
            if needed <= span:
                return time + needed
            budget -= span * rate
            time = next_boundary
            idx += 1


def simulate_coalescent_demography(
    n_samples: int,
    theta: float,
    history: PopulationHistory,
    *,
    rng: np.random.Generator | None = None,
    region_length: float = 1.0,
    min_snps: int = 0,
) -> CoalescentSample:
    """Neutral coalescent sample under a demographic history.

    Parameters mirror :func:`repro.simulate.coalescent.simulate_coalescent`
    with the added *history*; a constant history reproduces it in
    distribution.
    """
    if n_samples < 2:
        raise ValueError(f"need at least 2 samples, got {n_samples}")
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    rng = rng or np.random.default_rng()

    n_nodes = 2 * n_samples - 1
    branch_start = np.zeros(n_nodes)
    branch_lengths = np.zeros(n_nodes)
    active = list(range(n_samples))
    merges: list[tuple[int, int, int]] = []
    time = 0.0
    next_node = n_samples
    while len(active) > 1:
        k = len(active)
        time = history.draw_coalescence_time(time, k, rng)
        i, j = rng.choice(k, size=2, replace=False)
        a, b = active[i], active[j]
        for child in (a, b):
            branch_lengths[child] = time - branch_start[child]
        parent = next_node
        next_node += 1
        branch_start[parent] = time
        merges.append((a, b, parent))
        active = [node for node in active if node not in (a, b)]
        active.append(parent)

    sets = _leaf_sets(n_samples, merges)
    non_root = np.arange(2 * n_samples - 2)
    lengths = branch_lengths[non_root]
    total_length = float(lengths.sum())
    while True:
        n_mut = int(rng.poisson(theta / 2.0 * total_length))
        if n_mut >= min_snps:
            break
    columns = np.zeros((n_samples, n_mut), dtype=np.uint8)
    positions = np.empty(0)
    if n_mut:
        probabilities = lengths / total_length
        branches = rng.choice(non_root, size=n_mut, p=probabilities)
        for site, branch in enumerate(branches):
            for leaf in sets[branch]:
                columns[leaf, site] = 1
        positions = np.sort(rng.uniform(0.0, region_length, size=n_mut))
    return CoalescentSample(
        haplotypes=columns, positions=positions, tree_height=time
    )
