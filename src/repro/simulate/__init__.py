"""Data-generation substrate (stand-in for the paper's datasets).

The paper evaluates on a 1000-Genomes chromosome-1 subset (Dataset A) and
two simulated panels (Datasets B and C); none are shippable here, so this
package builds their closest synthetic equivalents:

- :mod:`repro.simulate.coalescent` — Kingman coalescent with infinite-sites
  mutations (Hudson ``ms``-style samples), including a chunked multi-locus
  mode approximating recombination between loci.
- :mod:`repro.simulate.wrightfisher` — exact forward Wright–Fisher with
  recombination, mutation, and optional positive selection; the sweep
  generator behind the OmegaPlus/ω examples.
- :mod:`repro.simulate.datasets` — the paper's Dataset A/B/C shapes
  (10,000 SNPs × 2,504 / 10,000 / 100,000 samples) with a human-like site
  frequency spectrum, plus scaled-down variants for wall-clock benches.
- :mod:`repro.simulate.msa` — the Section I preprocessing workflow:
  sequencing reads → multiple-sequence alignment → SNP calling, with
  configurable error and missing-data rates (exercises the gap-aware and
  finite-sites paths).
"""

from repro.simulate.coalescent import (
    CoalescentSample,
    simulate_chunked_region,
    simulate_coalescent,
)
from repro.simulate.datasets import (
    DATASET_SHAPES,
    dataset_A,
    dataset_B,
    dataset_C,
    simulate_sfs_panel,
)
from repro.simulate.demography import (
    Epoch,
    PopulationHistory,
    simulate_coalescent_demography,
)
from repro.simulate.msa import MSAPipelineResult, simulate_msa_pipeline
from repro.simulate.recombination import RecombinationMap, simulate_region_with_map
from repro.simulate.wrightfisher import (
    WrightFisherResult,
    simulate_sweep,
    simulate_wright_fisher,
)

__all__ = [
    "CoalescentSample",
    "simulate_chunked_region",
    "simulate_coalescent",
    "DATASET_SHAPES",
    "dataset_A",
    "dataset_B",
    "dataset_C",
    "simulate_sfs_panel",
    "Epoch",
    "PopulationHistory",
    "simulate_coalescent_demography",
    "RecombinationMap",
    "simulate_region_with_map",
    "MSAPipelineResult",
    "simulate_msa_pipeline",
    "WrightFisherResult",
    "simulate_sweep",
    "simulate_wright_fisher",
]
