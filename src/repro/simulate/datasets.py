"""The paper's benchmark dataset shapes (Section VI) and their generators.

The comparison of Tables I–III uses three panels of 10,000 SNPs each:

======= ================= =========================================
Dataset Samples           Source in the paper
======= ================= =========================================
A       2,504             1000 Genomes, human chromosome 1 subset
B       10,000            simulated
C       100,000           simulated
======= ================= =========================================

The 1000 Genomes download is not available offline, and the paper does not
specify its simulator's parameters, so all three are generated here with a
**site-frequency-spectrum sampler**: derived-allele frequencies drawn from
the neutral SFS (density ∝ 1/f, the standard constant-size expectation,
which also matches the singleton-heavy human spectrum to first order) and
per-sample states drawn Bernoulli per site. Sites are independent — LD is
at its independence baseline — which is irrelevant for the performance
benchmarks (every kernel's cost is data-oblivious: it depends on the matrix
*shape*, not the allele values) and is the reason this cheap generator can
produce the 100,000-sample Dataset C in seconds. Statistical examples that
need real linkage structure use :mod:`repro.simulate.coalescent` /
:mod:`repro.simulate.wrightfisher` instead.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitmatrix import BitMatrix

__all__ = [
    "DATASET_SHAPES",
    "dataset_A",
    "dataset_B",
    "dataset_C",
    "simulate_sfs_panel",
]

#: (n_samples, n_snps) of the paper's three benchmark datasets.
DATASET_SHAPES: dict[str, tuple[int, int]] = {
    "A": (2504, 10000),
    "B": (10000, 10000),
    "C": (100000, 10000),
}


def neutral_sfs_frequencies(
    n_snps: int, n_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw derived-allele frequencies from the neutral SFS.

    The neutral expectation puts probability ∝ 1/i on derived count *i*
    (1 ≤ i ≤ n−1); frequencies are the counts over *n*. Guaranteed
    polymorphic in expectation by construction (count ≥ 1 and ≤ n−1).
    """
    counts = np.arange(1, n_samples)
    weights = 1.0 / counts
    weights /= weights.sum()
    drawn = rng.choice(counts, size=n_snps, p=weights)
    return drawn / n_samples


def simulate_sfs_panel(
    n_samples: int,
    n_snps: int,
    *,
    rng: np.random.Generator | None = None,
    as_bitmatrix: bool = True,
) -> BitMatrix | np.ndarray:
    """Generate an ``(n_samples, n_snps)`` panel with a neutral SFS.

    Parameters
    ----------
    n_samples, n_snps:
        Panel shape.
    rng:
        Source of randomness.
    as_bitmatrix:
        Return the packed :class:`BitMatrix` (default — large panels are
        built directly in packed form, 64× smaller than dense) or a dense
        ``uint8`` matrix.
    """
    if n_samples < 2 or n_snps < 1:
        raise ValueError(
            f"panel must have >= 2 samples and >= 1 SNP, got "
            f"({n_samples}, {n_snps})"
        )
    rng = rng or np.random.default_rng()
    freqs = neutral_sfs_frequencies(n_snps, n_samples, rng)
    if not as_bitmatrix:
        dense = (rng.random((n_samples, n_snps)) < freqs[None, :]).astype(np.uint8)
        return dense
    # Build packed words SNP-by-SNP block to bound peak memory: 64 samples
    # of one SNP become one word via a dot with bit weights.
    n_words = (n_samples + 63) // 64
    words = np.zeros((n_snps, n_words), dtype=np.uint64)
    bit_weights = (np.uint64(1) << np.arange(64, dtype=np.uint64))
    snp_block = 256
    for start in range(0, n_snps, snp_block):
        stop = min(start + snp_block, n_snps)
        block_freqs = freqs[start:stop]
        dense = (
            rng.random((stop - start, n_samples)) < block_freqs[:, None]
        )
        padded = np.zeros((stop - start, n_words * 64), dtype=bool)
        padded[:, :n_samples] = dense
        bits = padded.reshape(stop - start, n_words, 64)
        words[start:stop] = (bits * bit_weights[None, None, :]).sum(
            axis=2, dtype=np.uint64
        )
    return BitMatrix(words=words, n_samples=n_samples)


def _dataset(name: str, *, scale: float, seed: int) -> BitMatrix:
    n_samples, n_snps = DATASET_SHAPES[name]
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    n_samples = max(2, int(round(n_samples * scale)))
    n_snps = max(1, int(round(n_snps * scale)))
    rng = np.random.default_rng(seed)
    result = simulate_sfs_panel(n_samples, n_snps, rng=rng)
    assert isinstance(result, BitMatrix)
    return result


def dataset_A(*, scale: float = 1.0, seed: int = 1000) -> BitMatrix:
    """Dataset A equivalent: 2,504 samples × 10,000 SNPs (× *scale*)."""
    return _dataset("A", scale=scale, seed=seed)


def dataset_B(*, scale: float = 1.0, seed: int = 2000) -> BitMatrix:
    """Dataset B equivalent: 10,000 samples × 10,000 SNPs (× *scale*)."""
    return _dataset("B", scale=scale, seed=seed)


def dataset_C(*, scale: float = 1.0, seed: int = 3000) -> BitMatrix:
    """Dataset C equivalent: 100,000 samples × 10,000 SNPs (× *scale*)."""
    return _dataset("C", scale=scale, seed=seed)
