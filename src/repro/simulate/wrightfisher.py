"""Forward Wright–Fisher simulation with recombination and selection.

The exact (if slower) counterpart to the coalescent generator: a haploid
Wright–Fisher population of ``pop_size`` L-site haplotypes evolves forward
in time; each offspring picks one or two parents, recombines with a
per-site crossover probability, and mutates under the infinite-alleles-
per-site approximation of the infinite-sites model (a site mutates 0→1 or
1→0; with L large and μ small, recurrent hits are negligible).

:func:`simulate_sweep` adds a single positively selected site and
conditions on its fixation — producing the hitch-hiking LD pattern
(high LD within each flank of the swept site, low across it) that the ω
statistic (paper Sections I and VI; Kim & Nielsen 2004) is designed to
detect, which makes this the ground-truth generator for the sweep-scan
example and the OmegaPlus baseline's tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.bitmatrix import BitMatrix

__all__ = ["WrightFisherResult", "simulate_sweep", "simulate_wright_fisher"]


@dataclass(frozen=True)
class WrightFisherResult:
    """Sampled haplotypes from a forward simulation.

    Attributes
    ----------
    haplotypes:
        Dense binary ``(n_samples, n_sites)`` matrix of segregating sites
        only (monomorphic sites dropped, as SNP calling would).
    positions:
        Site coordinates of the retained sites, in ``[0, n_sites_total)``.
    selected_position:
        Coordinate of the selected site, or NaN for neutral runs. The site
        itself is monomorphic after fixation and therefore *not* in
        ``haplotypes`` — exactly like a real post-sweep SNP map.
    generations:
        Generations simulated.
    """

    haplotypes: np.ndarray
    positions: np.ndarray
    selected_position: float
    generations: int

    @property
    def n_samples(self) -> int:
        """Number of sampled haplotypes."""
        return self.haplotypes.shape[0]

    @property
    def n_snps(self) -> int:
        """Number of segregating sites retained."""
        return self.haplotypes.shape[1]

    def to_bitmatrix(self) -> BitMatrix:
        """Pack into the Figure 2 layout for the LD kernels."""
        return BitMatrix.from_dense(self.haplotypes)


def _evolve(
    population: np.ndarray,
    generations: int,
    recomb_rate: float,
    mut_rate: float,
    rng: np.random.Generator,
    fitness_site: int | None,
    selection: float,
) -> np.ndarray:
    """Advance the population in place-style (returns the new array)."""
    pop_size, n_sites = population.shape
    for _generation in range(generations):
        if fitness_site is None:
            weights = None
        else:
            fitness = 1.0 + selection * population[:, fitness_site]
            weights = fitness / fitness.sum()
        parent_a = rng.choice(pop_size, size=pop_size, p=weights)
        parent_b = rng.choice(pop_size, size=pop_size, p=weights)
        # Crossover: one breakpoint per offspring with probability
        # recomb_rate * (n_sites - 1); prefix from parent A, suffix from B.
        children = population[parent_a].copy()
        do_recomb = rng.random(pop_size) < recomb_rate * max(n_sites - 1, 0)
        breakpoints = rng.integers(1, max(n_sites, 2), size=pop_size)
        rows = np.flatnonzero(do_recomb)
        for row in rows:
            bp = breakpoints[row]
            children[row, bp:] = population[parent_b[row], bp:]
        # Mutation: flip a Poisson number of uniformly chosen cells.
        n_mut = rng.poisson(mut_rate * pop_size * n_sites)
        if n_mut:
            mr = rng.integers(0, pop_size, size=n_mut)
            mc = rng.integers(0, n_sites, size=n_mut)
            children[mr, mc] ^= 1
        population = children
    return population


def simulate_wright_fisher(
    n_samples: int,
    n_sites: int,
    *,
    pop_size: int = 200,
    generations: int = 400,
    recomb_rate: float = 1e-3,
    mut_rate: float = 1e-4,
    rng: np.random.Generator | None = None,
) -> WrightFisherResult:
    """Neutral forward simulation; returns a sample of segregating sites.

    Parameters
    ----------
    n_samples:
        Haplotypes to sample from the final generation (≤ ``pop_size``).
    n_sites:
        Sites tracked along the chromosome.
    pop_size, generations:
        Haploid population size and burn-in length.
    recomb_rate:
        Per-adjacent-site-pair crossover probability per offspring.
    mut_rate:
        Per-site per-individual flip probability per generation.
    """
    rng = rng or np.random.default_rng()
    if n_samples > pop_size:
        raise ValueError(
            f"cannot sample {n_samples} haplotypes from population of {pop_size}"
        )
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1, got {n_sites}")
    population = np.zeros((pop_size, n_sites), dtype=np.uint8)
    population = _evolve(
        population, generations, recomb_rate, mut_rate, rng, None, 0.0
    )
    chosen = rng.choice(pop_size, size=n_samples, replace=False)
    sample = population[chosen]
    segregating = (sample.sum(axis=0) > 0) & (sample.sum(axis=0) < n_samples)
    return WrightFisherResult(
        haplotypes=np.ascontiguousarray(sample[:, segregating]),
        positions=np.flatnonzero(segregating).astype(np.float64),
        selected_position=float("nan"),
        generations=generations,
    )


def simulate_sweep(
    n_samples: int,
    n_sites: int,
    *,
    pop_size: int = 200,
    burn_in: int = 300,
    selection: float = 0.5,
    recomb_rate: float = 1e-3,
    mut_rate: float = 1e-4,
    max_attempts: int = 50,
    rng: np.random.Generator | None = None,
) -> WrightFisherResult:
    """Simulate a hard selective sweep at the chromosome midpoint.

    After neutral burn-in, a beneficial allele (selection coefficient
    *selection*) is introduced at the central site in one individual and
    the run is conditioned on fixation (re-attempted on loss, as standard
    for hard-sweep simulation). Sampling happens immediately after
    fixation, when the hitch-hiking LD signal is strongest.
    """
    rng = rng or np.random.default_rng()
    if n_samples > pop_size:
        raise ValueError(
            f"cannot sample {n_samples} haplotypes from population of {pop_size}"
        )
    if n_sites < 3:
        raise ValueError(f"need >= 3 sites for a midpoint sweep, got {n_sites}")
    if selection <= 0:
        raise ValueError(f"selection must be positive, got {selection}")
    center = n_sites // 2
    base = np.zeros((pop_size, n_sites), dtype=np.uint8)
    base = _evolve(base, burn_in, recomb_rate, mut_rate, rng, None, 0.0)
    # The selected site must start ancestral everywhere.
    base[:, center] = 0

    for _attempt in range(max_attempts):
        population = base.copy()
        population[rng.integers(0, pop_size), center] = 1
        generations = burn_in
        fixed = False
        for _gen in range(50 * pop_size):
            population = _evolve(
                population, 1, recomb_rate, mut_rate, rng, center, selection
            )
            generations += 1
            count = int(population[:, center].sum())
            if count == 0:
                break  # lost; retry
            if count == pop_size:
                fixed = True
                break
        if fixed:
            chosen = rng.choice(pop_size, size=n_samples, replace=False)
            sample = population[chosen]
            counts = sample.sum(axis=0)
            segregating = (counts > 0) & (counts < n_samples)
            return WrightFisherResult(
                haplotypes=np.ascontiguousarray(sample[:, segregating]),
                positions=np.flatnonzero(segregating).astype(np.float64),
                selected_position=float(center),
                generations=generations,
            )
    raise RuntimeError(
        f"beneficial allele failed to fix in {max_attempts} attempts; "
        "increase selection or max_attempts"
    )
