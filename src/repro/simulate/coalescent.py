"""Kingman coalescent with infinite-sites mutations (Hudson ``ms``-style).

Generates neutral haplotype samples the way Hudson's ``ms`` does for a
non-recombining locus:

1. Build the genealogy backwards in time: with *k* active lineages, the
   next coalescence is exponentially distributed with rate ``k(k−1)/2``
   (time in units of 2N generations), merging a uniform pair.
2. Drop mutations on the tree as a Poisson process with rate ``θ/2`` per
   unit branch length (``θ = 4Nμ`` per locus).
3. Each mutation is a new segregating site (infinite-sites model, paper
   Section II-A): the samples below the mutated branch carry the derived
   state 1, everything else the ancestral state 0. Site positions are
   uniform on the locus.

Recombination is approximated by :func:`simulate_chunked_region`:
independent coalescent loci concatenated along a coordinate axis — exact
free recombination *between* chunks, none *within*. This brackets real
linkage (LD decays with distance because distant sites sit in different
chunks) and is the documented substitution for a full ancestral
recombination graph; the forward simulator
(:mod:`repro.simulate.wrightfisher`) provides exact within-locus
recombination when the genealogy matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.bitmatrix import BitMatrix

__all__ = ["CoalescentSample", "simulate_chunked_region", "simulate_coalescent"]


@dataclass(frozen=True)
class CoalescentSample:
    """One simulated haplotype sample.

    Attributes
    ----------
    haplotypes:
        Dense binary ``(n_samples, n_snps)`` matrix (0 ancestral, 1 derived).
    positions:
        Site coordinates, ascending, within ``[0, region_length)``.
    tree_height:
        Time to the most recent common ancestor (2N-generation units); the
        sum over chunks for chunked regions.
    """

    haplotypes: np.ndarray
    positions: np.ndarray
    tree_height: float

    @property
    def n_samples(self) -> int:
        """Number of sampled haplotypes."""
        return self.haplotypes.shape[0]

    @property
    def n_snps(self) -> int:
        """Number of segregating sites."""
        return self.haplotypes.shape[1]

    def to_bitmatrix(self) -> BitMatrix:
        """Pack into the Figure 2 layout for the LD kernels."""
        return BitMatrix.from_dense(self.haplotypes)


def _simulate_genealogy(
    n_samples: int, rng: np.random.Generator
) -> tuple[list[tuple[int, int, int]], np.ndarray, float]:
    """Simulate one Kingman genealogy.

    Returns ``(merges, branch_lengths, height)`` where *merges* lists
    ``(child_a, child_b, parent)`` node triples (leaves are ``0..n−1``,
    internal nodes continue upward) and *branch_lengths* gives each
    non-root node's branch to its parent.
    """
    n_nodes = 2 * n_samples - 1
    branch_start = np.zeros(n_nodes)  # birth time of each node's branch
    branch_lengths = np.zeros(n_nodes)
    active = list(range(n_samples))
    merges: list[tuple[int, int, int]] = []
    time = 0.0
    next_node = n_samples
    while len(active) > 1:
        k = len(active)
        time += rng.exponential(2.0 / (k * (k - 1)))
        i, j = rng.choice(k, size=2, replace=False)
        a, b = active[i], active[j]
        for child in (a, b):
            branch_lengths[child] = time - branch_start[child]
        parent = next_node
        next_node += 1
        branch_start[parent] = time
        merges.append((a, b, parent))
        active = [node for node in active if node not in (a, b)]
        active.append(parent)
    return merges, branch_lengths, time


def _leaf_sets(n_samples: int, merges: list[tuple[int, int, int]]) -> list[set[int]]:
    """Set of descendant leaves below every node."""
    sets: list[set[int]] = [{leaf} for leaf in range(n_samples)]
    for a, b, _parent in merges:
        sets.append(sets[a] | sets[b])
    return sets


def simulate_coalescent(
    n_samples: int,
    theta: float,
    *,
    rng: np.random.Generator | None = None,
    region_length: float = 1.0,
    min_snps: int = 0,
) -> CoalescentSample:
    """Simulate one non-recombining locus under the neutral coalescent.

    Parameters
    ----------
    n_samples:
        Haplotypes to sample (≥ 2).
    theta:
        Population mutation rate ``4Nμ`` for the locus.
    rng:
        Source of randomness (fresh default generator when omitted).
    region_length:
        Coordinate span for site positions.
    min_snps:
        Re-simulate mutations until at least this many segregating sites
        appear (conditioning on data, as ``ms -s`` does approximately).
    """
    if n_samples < 2:
        raise ValueError(f"need at least 2 samples, got {n_samples}")
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    rng = rng or np.random.default_rng()
    merges, branch_lengths, height = _simulate_genealogy(n_samples, rng)
    sets = _leaf_sets(n_samples, merges)
    non_root = np.arange(2 * n_samples - 2)
    lengths = branch_lengths[non_root]
    total_length = float(lengths.sum())
    while True:
        n_mut = int(rng.poisson(theta / 2.0 * total_length))
        if n_mut >= min_snps:
            break
    columns = np.zeros((n_samples, n_mut), dtype=np.uint8)
    if n_mut:
        probabilities = lengths / total_length
        branches = rng.choice(non_root, size=n_mut, p=probabilities)
        for site, branch in enumerate(branches):
            for leaf in sets[branch]:
                columns[leaf, site] = 1
        # Sites are exchangeable across columns, so sorted uniform draws
        # serve directly as the (ascending) site coordinates.
        positions = np.sort(rng.uniform(0.0, region_length, size=n_mut))
    else:
        positions = np.empty(0)
    return CoalescentSample(
        haplotypes=columns, positions=positions, tree_height=height
    )


def simulate_chunked_region(
    n_samples: int,
    n_chunks: int,
    theta_per_chunk: float,
    *,
    rng: np.random.Generator | None = None,
    chunk_length: float = 1.0,
) -> CoalescentSample:
    """Concatenate independent coalescent loci along one coordinate axis.

    Approximates a recombining region: sites within a chunk share a
    genealogy (full linkage), sites in different chunks are independent
    (free recombination), so LD decays from within-chunk levels to the
    independence baseline over one chunk length.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    rng = rng or np.random.default_rng()
    blocks = []
    positions = []
    height = 0.0
    for chunk in range(n_chunks):
        sample = simulate_coalescent(
            n_samples, theta_per_chunk, rng=rng, region_length=chunk_length
        )
        blocks.append(sample.haplotypes)
        positions.append(sample.positions + chunk * chunk_length)
        height += sample.tree_height
    return CoalescentSample(
        haplotypes=np.concatenate(blocks, axis=1),
        positions=np.concatenate(positions),
        tree_height=height,
    )
