"""Variable recombination maps and hotspot-aware region simulation.

Human recombination is concentrated in hotspots: most crossovers happen in
narrow intervals, so LD blocks end at hotspots rather than decaying
uniformly with physical distance. This module models that structure on top
of the chunked-coalescent approximation:

- :class:`RecombinationMap` is a piecewise-constant rate map over physical
  coordinates (rates in cM/Mb-like arbitrary units);
- :func:`simulate_region_with_map` places chunk (independent-locus)
  boundaries at equal *genetic*-distance steps, so a hotspot produces many
  short physical chunks (LD broken) and a cold region one long chunk (LD
  preserved).

Behavioural anchor (tested): pairs at equal physical distance have lower
LD across a hotspot than within a cold region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulate.coalescent import CoalescentSample, simulate_coalescent

__all__ = ["RecombinationMap", "simulate_region_with_map"]


@dataclass(frozen=True)
class RecombinationMap:
    """Piecewise-constant recombination-rate map.

    Attributes
    ----------
    boundaries:
        Interval boundaries, ascending, length ``n_intervals + 1``; the map
        covers ``[boundaries[0], boundaries[-1])``.
    rates:
        Rate per physical-distance unit within each interval
        (length ``n_intervals``).
    """

    boundaries: np.ndarray
    rates: np.ndarray

    def __post_init__(self) -> None:
        boundaries = np.asarray(self.boundaries, dtype=np.float64)
        rates = np.asarray(self.rates, dtype=np.float64)
        if boundaries.ndim != 1 or boundaries.size < 2:
            raise ValueError("need at least one interval (two boundaries)")
        if np.any(np.diff(boundaries) <= 0):
            raise ValueError("boundaries must be strictly increasing")
        if rates.shape != (boundaries.size - 1,):
            raise ValueError(
                f"{rates.size} rates for {boundaries.size - 1} intervals"
            )
        if np.any(rates < 0) or not np.any(rates > 0):
            raise ValueError("rates must be non-negative with positive total")
        object.__setattr__(self, "boundaries", boundaries)
        object.__setattr__(self, "rates", rates)

    @classmethod
    def uniform(cls, length: float, rate: float = 1.0) -> "RecombinationMap":
        """A flat map over ``[0, length)``."""
        return cls(boundaries=np.array([0.0, length]), rates=np.array([rate]))

    @classmethod
    def with_hotspot(
        cls,
        length: float,
        *,
        hotspot_center: float,
        hotspot_width: float,
        hotspot_rate: float,
        background_rate: float = 1.0,
    ) -> "RecombinationMap":
        """Flat background with one hotspot interval."""
        lo = hotspot_center - hotspot_width / 2
        hi = hotspot_center + hotspot_width / 2
        if not 0 < lo < hi < length:
            raise ValueError("hotspot must lie strictly inside the region")
        return cls(
            boundaries=np.array([0.0, lo, hi, length]),
            rates=np.array([background_rate, hotspot_rate, background_rate]),
        )

    @property
    def length(self) -> float:
        """Physical span of the map."""
        return float(self.boundaries[-1] - self.boundaries[0])

    def genetic_distance(self, a: float, b: float) -> float:
        """Integrated rate between physical positions *a* and *b*."""
        lo, hi = sorted((a, b))
        if lo < self.boundaries[0] or hi > self.boundaries[-1]:
            raise ValueError("positions outside the map")
        total = 0.0
        for left, right, rate in zip(
            self.boundaries, self.boundaries[1:], self.rates
        ):
            overlap = max(0.0, min(hi, right) - max(lo, left))
            total += overlap * rate
        return total

    def total_genetic_length(self) -> float:
        """Integrated rate over the whole map."""
        return self.genetic_distance(self.boundaries[0], self.boundaries[-1])

    def position_at_genetic(self, target: float) -> float:
        """Physical position at integrated genetic distance *target* from 0."""
        if not 0 <= target <= self.total_genetic_length() + 1e-12:
            raise ValueError("genetic distance outside the map")
        remaining = target
        for left, right, rate in zip(
            self.boundaries, self.boundaries[1:], self.rates
        ):
            span = (right - left) * rate
            if remaining <= span or right == self.boundaries[-1]:
                if rate == 0:
                    return float(right)
                return float(left + remaining / rate)
            remaining -= span
        return float(self.boundaries[-1])


def simulate_region_with_map(
    n_samples: int,
    rec_map: RecombinationMap,
    *,
    n_chunks: int = 10,
    theta_per_chunk: float = 5.0,
    rng: np.random.Generator | None = None,
) -> CoalescentSample:
    """Chunked-coalescent sample with chunk boundaries from the rate map.

    The region is cut into *n_chunks* independent loci of equal *genetic*
    length; each locus gets its own genealogy and mutations placed uniformly
    over its *physical* span. Hotspots concentrate genetic length into
    little physical space, so chunk boundaries pile up there — exactly
    where real LD blocks break.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    rng = rng or np.random.default_rng()
    total_gen = rec_map.total_genetic_length()
    cut_points = [
        rec_map.position_at_genetic(total_gen * i / n_chunks)
        for i in range(n_chunks + 1)
    ]
    blocks = []
    positions = []
    height = 0.0
    for left, right in zip(cut_points, cut_points[1:]):
        span = right - left
        sample = simulate_coalescent(
            n_samples, theta_per_chunk, rng=rng, region_length=max(span, 1e-9)
        )
        blocks.append(sample.haplotypes)
        positions.append(sample.positions + left)
        height += sample.tree_height
    haplotypes = np.concatenate(blocks, axis=1)
    all_positions = np.concatenate(positions)
    order = np.argsort(all_positions, kind="stable")
    return CoalescentSample(
        haplotypes=np.ascontiguousarray(haplotypes[:, order]),
        positions=all_positions[order],
        tree_height=height,
    )
