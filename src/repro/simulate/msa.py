"""The Section I preprocessing workflow: reads → MSA → SNP calling.

The paper's introduction describes the steps that precede any LD
computation: sequence each individual, map the short reads onto a reference
to form a multiple-sequence alignment (MSA), then call SNPs — monomorphic
columns are dropped because they are non-informative for LD.

This module simulates that pipeline end to end so the library's inputs can
be produced the way real inputs are:

1. A true reference sequence and per-sample true haplotypes (binary variant
   states applied to the reference at variant positions).
2. Per-sample *reads*: each position is covered by ``coverage`` independent
   observations, each flipped with probability ``error_rate``; positions
   may also drop out entirely (``missing_rate``), producing alignment gaps.
3. Consensus calling per (sample, position): majority vote over the
   covering reads; ties or zero coverage give an ambiguous call (gap).
4. SNP calling over the consensus MSA: columns segregating among the
   *called* states become the SNP map; everything else is dropped.

The result carries the packed genomic matrix *and* the validity mask, so
the downstream gap-aware path (:mod:`repro.analysis.gaps`) gets realistic
inputs, and the caller can measure the pipeline's genotype error against
the simulated truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.bitmatrix import BitMatrix
from repro.encoding.masks import ValidityMask

__all__ = ["MSAPipelineResult", "simulate_msa_pipeline"]

_BASES = np.array(list("ACGT"))


@dataclass(frozen=True)
class MSAPipelineResult:
    """Everything the simulated sequencing pipeline produces.

    Attributes
    ----------
    matrix:
        Packed binary genomic matrix over the called SNPs (0 = reference
        state, 1 = alternate), with uncalled cells zeroed.
    mask:
        Validity mask: 0 where the consensus call was ambiguous/missing.
    positions:
        Reference coordinates of the called SNPs.
    true_matrix:
        The simulated-truth binary matrix at the same SNPs (for error
        measurement).
    consensus:
        The called character MSA (``(n_samples, sequence_length)``, with
        ``"-"`` for no-calls) — input for the finite-sites path.
    genotype_error_rate:
        Fraction of called (valid) cells whose state differs from truth.
    """

    matrix: BitMatrix
    mask: ValidityMask
    positions: np.ndarray
    true_matrix: np.ndarray
    consensus: np.ndarray
    genotype_error_rate: float

    @property
    def n_snps(self) -> int:
        """Number of called SNPs."""
        return self.matrix.n_snps


def simulate_msa_pipeline(
    n_samples: int,
    sequence_length: int,
    *,
    variant_density: float = 0.1,
    coverage: int = 5,
    error_rate: float = 0.01,
    missing_rate: float = 0.02,
    rng: np.random.Generator | None = None,
) -> MSAPipelineResult:
    """Run the simulated reads → MSA → SNP-calling pipeline.

    Parameters
    ----------
    n_samples:
        Individuals sequenced.
    sequence_length:
        Reference length in bases.
    variant_density:
        Fraction of reference positions carrying a true variant.
    coverage:
        Reads covering each (sample, position).
    error_rate:
        Per-read-base miscall probability (substitution to a random other
        base).
    missing_rate:
        Probability a (sample, position) has no coverage at all.
    """
    if not 0 <= error_rate < 0.5:
        raise ValueError(f"error_rate must be in [0, 0.5), got {error_rate}")
    if not 0 <= missing_rate < 1:
        raise ValueError(f"missing_rate must be in [0, 1), got {missing_rate}")
    if coverage < 1:
        raise ValueError(f"coverage must be >= 1, got {coverage}")
    rng = rng or np.random.default_rng()

    # --- truth -----------------------------------------------------------
    reference = rng.integers(0, 4, size=sequence_length)
    is_variant = rng.random(sequence_length) < variant_density
    variant_pos = np.flatnonzero(is_variant)
    alt_allele = (reference[variant_pos] + rng.integers(1, 4, variant_pos.size)) % 4
    # True binary state per (sample, variant): derived-allele frequency per
    # variant drawn uniform, states Bernoulli.
    freqs = rng.uniform(0.05, 0.95, size=variant_pos.size)
    truth_bits = (rng.random((n_samples, variant_pos.size)) < freqs).astype(np.uint8)
    true_seqs = np.broadcast_to(reference, (n_samples, sequence_length)).copy()
    for v, pos in enumerate(variant_pos):
        carriers = truth_bits[:, v].astype(bool)
        true_seqs[carriers, pos] = alt_allele[v]

    # --- sequencing + consensus calling -----------------------------------
    votes = np.zeros((n_samples, sequence_length, 4), dtype=np.int32)
    for _read in range(coverage):
        observed = true_seqs.copy()
        errors = rng.random(true_seqs.shape) < error_rate
        shift = rng.integers(1, 4, size=int(errors.sum()))
        observed[errors] = (observed[errors] + shift) % 4
        np.put_along_axis(
            votes,
            observed[:, :, None],
            np.take_along_axis(votes, observed[:, :, None], axis=2) + 1,
            axis=2,
        )
    best = votes.argmax(axis=2)
    best_count = votes.max(axis=2)
    runner_up = np.sort(votes, axis=2)[:, :, -2]
    ambiguous = best_count == runner_up  # tie => no confident call
    dropped = rng.random((n_samples, sequence_length)) < missing_rate
    called = ~(ambiguous | dropped)
    consensus = np.where(called, _BASES[best], "-")

    # --- SNP calling -------------------------------------------------------
    ref_base = reference[None, :]
    is_alt = called & (best != ref_base)
    # A column is a SNP if both states appear among called cells.
    n_called = called.sum(axis=0)
    n_alt = is_alt.sum(axis=0)
    snp_cols = np.flatnonzero((n_alt > 0) & (n_alt < n_called))
    matrix_dense = is_alt[:, snp_cols].astype(np.uint8)
    mask_dense = called[:, snp_cols].astype(np.uint8)
    truth_at_snps = np.zeros_like(matrix_dense)
    variant_index = {int(pos): v for v, pos in enumerate(variant_pos)}
    for out_col, pos in enumerate(snp_cols):
        v = variant_index.get(int(pos))
        if v is not None:
            truth_at_snps[:, out_col] = truth_bits[:, v]
    valid_cells = mask_dense.astype(bool)
    n_valid = int(valid_cells.sum())
    errors = int((matrix_dense[valid_cells] != truth_at_snps[valid_cells]).sum())
    return MSAPipelineResult(
        matrix=BitMatrix.from_dense(matrix_dense * mask_dense),
        mask=ValidityMask.from_dense(mask_dense),
        positions=snp_cols.astype(np.float64),
        true_matrix=truth_at_snps,
        consensus=consensus,
        genotype_error_rate=errors / n_valid if n_valid else 0.0,
    )
