"""Gap-aware LD via validity masks (paper Section VII, "Considering alignment gaps").

With per-SNP validity vectors ``c_i`` (1 = valid allelic state, 0 = gap or
missing call), the paper replaces every inner product with its masked form
over the *pair-specific* valid sample set ``c_ij = c_i & c_j``::

    n_ij      = POPCNT(c_ij)                       per-pair sample size
    count_i|j = POPCNT(c_ij & s_i)                 masked allele count of i
    count_ij  = POPCNT(c_ij & s_i & s_j)           masked haplotype count

so ``p_i = count_i|j / n_ij`` etc., then D and r² as usual (Equations 1–2).

The key observation carried over from the main result: *all four masked
count matrices are themselves popcount GEMMs*. With ``sc_i = s_i & c_i``
(masked data, computed once per SNP):

    count_ij  matrix = gram(sc)            since sc_i & sc_j = c_ij & s_i & s_j
    n_ij      matrix = gram(c)
    count_i|j matrix = gemm(sc, c)         row i, column j
    count_j|i matrix = transpose of the above

so the gap-aware extension needs four blocked GEMMs instead of one — it stays
inside the paper's framework rather than falling back to per-pair loops.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL, popcount_gemm, popcount_gram
from repro.core.ldmatrix import as_bitmatrix
from repro.encoding.bitmatrix import BitMatrix
from repro.encoding.masks import ValidityMask

__all__ = ["masked_ld_matrix", "masked_ld_pair"]

_STATS = ("r2", "D", "H")


def _stats_from_counts(
    joint: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    n_valid: np.ndarray,
    stat: str,
    undefined: float,
) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        n = n_valid.astype(np.float64)
        h = np.where(n > 0, joint / n, np.nan)
        p = np.where(n > 0, left / n, np.nan)
        q = np.where(n > 0, right / n, np.nan)
        d = h - p * q
        if stat == "H":
            return np.where(n > 0, h, undefined)
        if stat == "D":
            return np.where(n > 0, d, undefined)
        if stat == "r2":
            denom = p * q * (1.0 - p) * (1.0 - q)
            return np.where((n > 0) & (denom > 0), d * d / denom, undefined)
    raise ValueError(f"unknown LD statistic {stat!r}; choose from {_STATS}")


def masked_ld_pair(
    data: BitMatrix | np.ndarray,
    mask: ValidityMask,
    i: int,
    j: int,
    stat: str = "r2",
    *,
    undefined: float = np.nan,
) -> float:
    """Gap-aware LD for one SNP pair (the paper's per-pair masked formulas)."""
    matrix = as_bitmatrix(data)
    if mask.n_samples != matrix.n_samples or mask.n_snps != matrix.n_snps:
        raise ValueError(
            f"mask shape {(mask.n_samples, mask.n_snps)} does not match data "
            f"shape {matrix.shape}"
        )
    c_ij = mask.pair_valid_words(i, j)
    s_i, s_j = matrix.words[i], matrix.words[j]
    n_valid = np.array([[np.bitwise_count(c_ij).sum()]], dtype=np.int64)
    joint = np.array([[np.bitwise_count(c_ij & s_i & s_j).sum()]], dtype=np.int64)
    left = np.array([[np.bitwise_count(c_ij & s_i).sum()]], dtype=np.int64)
    right = np.array([[np.bitwise_count(c_ij & s_j).sum()]], dtype=np.int64)
    return float(
        _stats_from_counts(joint, left, right, n_valid, stat, undefined)[0, 0]
    )


def masked_ld_matrix(
    data: BitMatrix | np.ndarray,
    mask: ValidityMask,
    stat: str = "r2",
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    undefined: float = np.nan,
) -> np.ndarray:
    """All-pairs gap-aware LD as four blocked popcount GEMMs.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`; gap positions may hold any value — they are
        zeroed by the mask before computation.
    mask:
        Validity mask over the same grid.
    stat:
        ``"r2"``, ``"D"``, or ``"H"``.
    undefined:
        Fill for pairs with no valid samples or a zero r² denominator.
    """
    matrix = as_bitmatrix(data)
    if mask.n_samples != matrix.n_samples or mask.n_snps != matrix.n_snps:
        raise ValueError(
            f"mask shape {(mask.n_samples, mask.n_snps)} does not match data "
            f"shape {matrix.shape}"
        )
    masked = mask.apply(matrix)
    joint = popcount_gram(masked.words, params=params, kernel=kernel)
    n_valid = popcount_gram(mask.words, params=params, kernel=kernel)
    left = popcount_gemm(masked.words, mask.words, params=params, kernel=kernel)
    right = left.T
    return _stats_from_counts(joint, left, right, n_valid, stat, undefined)
