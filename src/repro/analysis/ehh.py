"""Extended haplotype homozygosity (EHH) from the packed bit matrix.

A second sweep-detection statistic family (Sabeti et al. 2002) built on
the same packed substrate as LD: starting from a *core* SNP, EHH at
distance *x* is the probability that two randomly drawn haplotypes
carrying the same core allele are identical at every SNP between the core
and *x*::

    EHH(x) = Σ_g C(n_g, 2) / C(n_core, 2)

where *g* ranges over the distinct extended haplotypes at distance *x*.
A sweeping allele sits on one long shared haplotype, so its EHH decays
slowly relative to the ancestral allele's — the basis of the iHS family
of tests and a complement to the ω statistic implemented in
:mod:`repro.analysis.omega`.

Implementation detail: extended-haplotype classes are refined
incrementally SNP by SNP outward from the core (a partition-refinement
pass over the packed columns), so one full decay curve costs O(window ·
n_samples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ldmatrix import as_bitmatrix
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["EhhCurve", "ehh_decay", "integrated_ehh"]


@dataclass(frozen=True)
class EhhCurve:
    """EHH values for the two core alleles, outward from a core SNP.

    Attributes
    ----------
    distances:
        SNP-index distances from the core (one direction), starting at 0.
    ehh_derived, ehh_ancestral:
        EHH per distance for carriers of the derived / ancestral core
        allele (NaN when a group has < 2 haplotypes).
    core:
        Core SNP index.
    """

    distances: np.ndarray
    ehh_derived: np.ndarray
    ehh_ancestral: np.ndarray
    core: int


def _homozygosity(group_ids: np.ndarray) -> float:
    """Σ C(n_g, 2) / C(n, 2) over the partition encoded by *group_ids*."""
    n = group_ids.size
    if n < 2:
        return float("nan")
    _unique, counts = np.unique(group_ids, return_counts=True)
    pairs = (counts * (counts - 1) // 2).sum()
    return float(pairs) / (n * (n - 1) // 2)


def ehh_decay(
    data: BitMatrix | np.ndarray,
    core: int,
    *,
    max_distance: int = 50,
    direction: int = +1,
) -> EhhCurve:
    """EHH decay from a core SNP in one direction.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    core:
        Core SNP index.
    max_distance:
        Furthest SNP-index distance evaluated.
    direction:
        ``+1`` scans right of the core, ``-1`` left.
    """
    matrix = as_bitmatrix(data)
    if not 0 <= core < matrix.n_snps:
        raise ValueError(f"core {core} out of range for {matrix.n_snps} SNPs")
    if direction not in (+1, -1):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    if max_distance < 0:
        raise ValueError(f"max_distance must be >= 0, got {max_distance}")
    dense = matrix.to_dense()
    core_allele = dense[:, core]
    carriers = {
        "derived": np.flatnonzero(core_allele == 1),
        "ancestral": np.flatnonzero(core_allele == 0),
    }
    # Partition refinement: group id per haplotype, refined per SNP.
    group_ids = {
        key: np.zeros(idx.size, dtype=np.int64) for key, idx in carriers.items()
    }
    distances = []
    values: dict[str, list[float]] = {"derived": [], "ancestral": []}
    for distance in range(max_distance + 1):
        snp = core + direction * distance
        if not 0 <= snp < matrix.n_snps:
            break
        for key, idx in carriers.items():
            if distance > 0:
                alleles = dense[idx, snp].astype(np.int64)
                group_ids[key] = group_ids[key] * 2 + alleles
                # Re-compact ids to avoid overflow on long walks.
                _, group_ids[key] = np.unique(
                    group_ids[key], return_inverse=True
                )
            values[key].append(_homozygosity(group_ids[key]))
        distances.append(distance)
    return EhhCurve(
        distances=np.array(distances, dtype=np.int64),
        ehh_derived=np.array(values["derived"]),
        ehh_ancestral=np.array(values["ancestral"]),
        core=core,
    )


def integrated_ehh(curve: EhhCurve, *, cutoff: float = 0.05) -> tuple[float, float]:
    """Area under each allele's EHH curve down to *cutoff* (iHH).

    The (unstandardized) ingredients of the iHS statistic: trapezoidal
    integral of EHH over distance, truncated where EHH drops below
    *cutoff*. Returns ``(ihh_derived, ihh_ancestral)``.
    """
    if not 0 <= cutoff < 1:
        raise ValueError(f"cutoff must be in [0, 1), got {cutoff}")

    def integrate(values: np.ndarray) -> float:
        if values.size == 0 or np.isnan(values[0]):
            return float("nan")
        keep = values >= cutoff
        if not keep.any():
            return 0.0
        last = int(np.flatnonzero(keep)[-1]) + 1
        x = curve.distances[:last].astype(np.float64)
        y = np.nan_to_num(values[:last], nan=0.0)
        if x.size < 2:
            return 0.0
        return float(np.trapezoid(y, x))

    return integrate(curve.ehh_derived), integrate(curve.ehh_ancestral)
