"""Classical window-level LD summary statistics on the GEMM matrix.

Population-genetics scans rarely report raw pairwise matrices; they reduce
windows to scalar summaries. All of these are cheap reductions of the LD
matrix the blocked GEMM mass-produces:

- **Kelly's ZnS** (Kelly 1997): mean r² over all SNP pairs of a window —
  the most widely used LD summary, elevated under sweeps and structure.
- **Wall's B and Q** (Wall 1999): the fraction of *adjacent* SNP pairs
  that are congruent (no recombination evidence: only 2 or 3 of the 4
  possible two-locus haplotypes present), and its partition variant.
- **Mean |D'|**: the haplotype-structure summary used in block detection.

Each function accepts the full region and optional window bounds, so a
sliding-window scan is a loop of O(window²) reductions over one GEMM.
"""

from __future__ import annotations

import numpy as np

from repro.core.ldmatrix import as_bitmatrix, compute_ld
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["kelly_zns", "mean_abs_d_prime", "walls_b"]


def _window(matrix: BitMatrix, start: int | None, stop: int | None) -> BitMatrix:
    lo = 0 if start is None else start
    hi = matrix.n_snps if stop is None else stop
    if not 0 <= lo < hi <= matrix.n_snps:
        raise ValueError(
            f"window [{lo}, {hi}) invalid for {matrix.n_snps} SNPs"
        )
    return matrix.slice_snps(lo, hi)


def kelly_zns(
    data: BitMatrix | np.ndarray,
    *,
    start: int | None = None,
    stop: int | None = None,
) -> float:
    """Kelly's ZnS: mean pairwise r² over the window (NaN pairs excluded).

    NaN when the window has fewer than 2 SNPs with defined r².
    """
    matrix = _window(as_bitmatrix(data), start, stop)
    if matrix.n_snps < 2:
        return float("nan")
    r2 = compute_ld(matrix).r2()
    iu = np.triu_indices(matrix.n_snps, k=1)
    values = r2[iu]
    values = values[~np.isnan(values)]
    return float(values.mean()) if values.size else float("nan")


def mean_abs_d_prime(
    data: BitMatrix | np.ndarray,
    *,
    start: int | None = None,
    stop: int | None = None,
) -> float:
    """Mean |D'| over all defined pairs of the window."""
    matrix = _window(as_bitmatrix(data), start, stop)
    if matrix.n_snps < 2:
        return float("nan")
    dp = compute_ld(matrix).d_prime()
    iu = np.triu_indices(matrix.n_snps, k=1)
    values = np.abs(dp[iu])
    values = values[~np.isnan(values)]
    return float(values.mean()) if values.size else float("nan")


def walls_b(
    data: BitMatrix | np.ndarray,
    *,
    start: int | None = None,
    stop: int | None = None,
) -> float:
    """Wall's B: fraction of adjacent SNP pairs that are *congruent*.

    A pair is congruent when at most 3 of the 4 possible two-locus
    haplotypes (00, 01, 10, 11) are observed — i.e. the four-gamete test
    finds no recombination between them. Computed from the packed words:
    the four haplotype counts come from one AND plus the marginals.

    NaN for windows with fewer than 2 SNPs.
    """
    matrix = _window(as_bitmatrix(data), start, stop)
    n = matrix.n_snps
    if n < 2:
        return float("nan")
    words = matrix.words
    counts = matrix.allele_counts()
    n_samples = matrix.n_samples
    congruent = 0
    for i in range(n - 1):
        c11 = int(np.bitwise_count(words[i] & words[i + 1]).sum())
        c10 = int(counts[i]) - c11
        c01 = int(counts[i + 1]) - c11
        c00 = n_samples - c11 - c10 - c01
        observed = sum(1 for c in (c00, c01, c10, c11) if c > 0)
        if observed <= 3:
            congruent += 1
    return congruent / (n - 1)
