"""Selective-sweep detection scans built on the GEMM LD matrix.

This is the library's flagship application (paper Section I: "high LD is
expected across a positively selected site" is *not* what sweep theory
predicts — LD is high *within* each flank and low *across* the swept site,
which is exactly what ω measures). The scan below is the GEMM-accelerated
replacement for OmegaPlus's demand-driven engine: one blocked popcount GEMM
produces every r² value of the region, then ω evaluations are cheap matrix
reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.omega import omega_scan_from_ld
from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL
from repro.core.ldmatrix import as_bitmatrix, compute_ld
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["SweepScanResult", "sweep_scan"]


@dataclass(frozen=True)
class SweepScanResult:
    """Result of a GEMM-accelerated ω sweep scan.

    Attributes
    ----------
    grid:
        Genomic coordinates of the ω evaluation grid.
    omegas:
        Maximized ω per grid position.
    best_splits:
        Global SNP index of the best left-flank end per grid position.
    threshold:
        Significance threshold used by :attr:`candidate_regions`.
    """

    grid: np.ndarray
    omegas: np.ndarray
    best_splits: np.ndarray
    threshold: float

    @property
    def peak_position(self) -> float:
        """Grid coordinate of the maximum ω."""
        return float(self.grid[int(np.argmax(self.omegas))])

    @property
    def peak_omega(self) -> float:
        """The maximum ω value over the grid."""
        return float(np.max(self.omegas))

    def candidate_regions(self) -> list[tuple[float, float]]:
        """Contiguous grid intervals where ω exceeds the threshold."""
        above = self.omegas > self.threshold
        regions: list[tuple[float, float]] = []
        start: int | None = None
        for idx, flag in enumerate(above):
            if flag and start is None:
                start = idx
            elif not flag and start is not None:
                regions.append((float(self.grid[start]), float(self.grid[idx - 1])))
                start = None
        if start is not None:
            regions.append((float(self.grid[start]), float(self.grid[-1])))
        return regions


def sweep_scan(
    data: BitMatrix | np.ndarray,
    positions: np.ndarray | None = None,
    *,
    grid_size: int = 10,
    max_window: int = 100,
    search: str = "split",
    threshold: float | None = None,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    n_threads: int = 1,
) -> SweepScanResult:
    """Scan a region for selective sweeps via ω on the GEMM LD matrix.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    positions:
        Monotonic genomic coordinates per SNP; defaults to SNP indices.
    grid_size, max_window:
        ω evaluation grid density and per-flank window cap.
    search:
        ``"split"`` (default) or ``"flanks"`` — see
        :func:`repro.analysis.omega.evaluate_grid_point`.
    threshold:
        Candidate-region threshold; defaults to the 95th percentile of the
        scan's own ω values (a common empirical-outlier convention).
    params, kernel, n_threads:
        GEMM engine knobs, forwarded to the LD computation.
    """
    matrix = as_bitmatrix(data)
    if positions is None:
        positions = np.arange(matrix.n_snps, dtype=np.float64)
    else:
        positions = np.asarray(positions, dtype=np.float64)
    result = compute_ld(matrix, params=params, kernel=kernel, n_threads=n_threads)
    r2 = result.r2()
    omegas, splits = omega_scan_from_ld(
        r2, positions, np.linspace(positions[0], positions[-1], grid_size),
        max_window=max_window, search=search,
    )
    if threshold is None:
        finite = omegas[np.isfinite(omegas)]
        threshold = float(np.percentile(finite, 95.0)) if finite.size else 0.0
    return SweepScanResult(
        grid=np.linspace(positions[0], positions[-1], grid_size),
        omegas=omegas,
        best_splits=splits,
        threshold=threshold,
    )
