"""Tanimoto 2D-fingerprint similarity as the same popcount GEMM (§VII, Eq. 7).

The paper's "adapting for other domains" example: chemical compounds
represented as binary fingerprint vectors compare via the Tanimoto
coefficient

    T(A, B) = x / (p + q − x)

with ``p = POPCNT(A)``, ``q = POPCNT(B)``, ``x = POPCNT(A & B)`` — the same
AND/POPCNT inner product as the LD haplotype count, so the all-pairs
similarity matrix is one blocked popcount GEMM plus an elementwise map.

Fingerprints are stored one-per-row and packed with the same Figure 2 layout
(each fingerprint plays the role of one SNP; fingerprint bits play the role
of samples).
"""

from __future__ import annotations

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL, popcount_gemm, popcount_gram
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["pack_fingerprints", "tanimoto_matrix", "tanimoto_pair"]


def pack_fingerprints(fingerprints: np.ndarray | BitMatrix) -> BitMatrix:
    """Pack a dense ``(n_fingerprints, n_bits)`` 0/1 matrix for the kernel."""
    if isinstance(fingerprints, BitMatrix):
        return fingerprints
    return BitMatrix.from_snp_vectors(np.asarray(fingerprints))


def tanimoto_pair(a_bits: np.ndarray, b_bits: np.ndarray) -> float:
    """Tanimoto coefficient of two dense binary vectors (Eq. 7).

    Two all-zero fingerprints have similarity 1.0 by the usual convention
    (they are identical); a zero against a non-zero gives 0.0.
    """
    a = np.asarray(a_bits).astype(bool)
    b = np.asarray(b_bits).astype(bool)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(
            f"fingerprints must be 1-D of equal length, got {a.shape} and {b.shape}"
        )
    p = int(a.sum())
    q = int(b.sum())
    x = int((a & b).sum())
    if p + q == 0:
        return 1.0
    return x / (p + q - x)


def tanimoto_matrix(
    fingerprints: np.ndarray | BitMatrix,
    others: np.ndarray | BitMatrix | None = None,
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
) -> np.ndarray:
    """All-pairs Tanimoto similarity via the blocked popcount GEMM.

    Parameters
    ----------
    fingerprints:
        Dense ``(n, n_bits)`` binary matrix or pre-packed
        :class:`BitMatrix` (one fingerprint per "SNP" row).
    others:
        Optional second set for the rectangular database-vs-queries case;
        must use the same bit width.

    Returns
    -------
    ``(n, n)`` or ``(n, m)`` float matrix of similarities in [0, 1].
    """
    a = pack_fingerprints(fingerprints)
    p = a.allele_counts().astype(np.float64)
    if others is None:
        x = popcount_gram(a.words, params=params, kernel=kernel)
        q = p
    else:
        b = pack_fingerprints(others)
        if b.n_samples != a.n_samples:
            raise ValueError(
                f"fingerprint widths differ: {a.n_samples} vs {b.n_samples} bits"
            )
        x = popcount_gemm(a.words, b.words, params=params, kernel=kernel)
        q = b.allele_counts().astype(np.float64)
    union = p[:, None] + q[None, :] - x
    with np.errstate(divide="ignore", invalid="ignore"):
        sim = np.where(union > 0, x / union, 1.0)
    return sim
