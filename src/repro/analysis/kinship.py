"""Kinship / genomic-relationship matrices: the same kernel, transposed.

LD is the SNP×SNP Gram matrix of the genomic matrix; the *sample×sample*
Gram matrix of the very same bits is the allele-sharing kinship estimator
behind GRM/PCA pipelines (VanRaden 2008, haploid form):

    K[s, t] = Σ_j (x_sj − p_j)(x_tj − p_j)  /  Σ_j p_j (1 − p_j)

Expanding the product, the only O(n²·m) term is ``Σ_j x_sj x_tj`` — a
popcount Gram over the *transposed* packing (samples as rows), i.e. the
identical AND/POPCNT/ADD GEMM with the roles of the two dimensions
swapped. The correction terms are O(n·m) weighted sums. The paper's
"future-proof" argument applies symmetrically: growing SNP counts only
deepen this GEMM's k dimension.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL, popcount_gram
from repro.core.ldmatrix import as_bitmatrix
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["kinship_matrix"]


def kinship_matrix(
    data: BitMatrix | np.ndarray,
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    drop_monomorphic: bool = True,
) -> np.ndarray:
    """Allele-sharing kinship matrix over samples (haploid VanRaden form).

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    drop_monomorphic:
        Exclude monomorphic SNPs (they contribute nothing to the numerator
        and nothing to the denominator; keeping them only adds noise-free
        zeros, but the conventional estimator drops them).

    Returns
    -------
    ``(n_samples, n_samples)`` float matrix; expectation ~1 on the
    diagonal and ~0 off-diagonal for unrelated samples.
    """
    matrix = as_bitmatrix(data)
    if drop_monomorphic:
        matrix = matrix.drop_monomorphic()
    if matrix.n_snps == 0:
        raise ValueError("kinship undefined with zero (polymorphic) SNPs")
    if matrix.n_samples == 0:
        raise ValueError("kinship undefined for zero samples")
    dense = matrix.to_dense()
    p = matrix.allele_frequencies()
    denom = float((p * (1.0 - p)).sum())
    if denom <= 0.0:
        raise ValueError("no polymorphic SNPs: kinship denominator is zero")

    # O(n^2 m) term: sample-major popcount Gram (the transposed packing).
    by_sample = BitMatrix.from_dense(dense.T)
    shared = popcount_gram(by_sample.words, params=params, kernel=kernel)

    # O(n m) corrections: s_p[s] = Σ_j p_j x_sj.
    s_p = dense.astype(np.float64) @ p
    sum_p2 = float((p * p).sum())
    numer = shared - s_p[:, None] - s_p[None, :] + sum_p2
    return numer / denom
