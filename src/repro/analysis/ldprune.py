"""LD pruning: PLINK-style ``--indep-pairwise`` on the GEMM LD matrix.

GWAS pipelines (paper Section I) thin their SNP sets so that no retained
pair within a sliding window exceeds an r² threshold — PLINK's
``--indep-pairwise <window> <step> <r2>``. The pruning decision needs exactly
the pairwise r² values the GEMM kernel mass-produces, so this is a natural
downstream consumer: windows are cut from the packed matrix, each window's r²
block comes from one small GEMM, and the greedy elimination runs on top.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL
from repro.core.ldmatrix import as_bitmatrix, compute_ld
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["ld_prune"]


def ld_prune(
    data: BitMatrix | np.ndarray,
    *,
    window: int = 50,
    step: int = 5,
    r2_threshold: float = 0.2,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
) -> np.ndarray:
    """Greedy LD pruning, PLINK ``--indep-pairwise`` semantics.

    Slides a *window*-SNP window by *step*; within each window, while any
    retained pair has r² above the threshold, removes the SNP of the pair
    with the smaller minor-allele frequency (PLINK's tiebreak).

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    window:
        Window size in SNPs.
    step:
        Window slide in SNPs.
    r2_threshold:
        Maximum allowed pairwise r² among retained SNPs in a window.

    Returns
    -------
    Sorted integer indices of the retained SNPs.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2 SNPs, got {window}")
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    if not 0.0 < r2_threshold <= 1.0:
        raise ValueError(f"r2_threshold must be in (0, 1], got {r2_threshold}")
    matrix = as_bitmatrix(data)
    n_snps = matrix.n_snps
    freqs = matrix.allele_frequencies()
    maf = np.minimum(freqs, 1.0 - freqs)
    keep = np.ones(n_snps, dtype=bool)

    start = 0
    while start < n_snps:
        stop = min(start + window, n_snps)
        local = np.flatnonzero(keep[start:stop]) + start
        if local.size >= 2:
            block = matrix.select(local)
            r2 = compute_ld(block, params=params, kernel=kernel).r2(undefined=0.0)
            np.fill_diagonal(r2, 0.0)
            alive = np.ones(local.size, dtype=bool)
            while True:
                masked = np.where(np.outer(alive, alive), r2, 0.0)
                worst = np.unravel_index(np.argmax(masked), masked.shape)
                if masked[worst] <= r2_threshold:
                    break
                a, b = worst
                # Drop the lower-MAF member of the offending pair.
                victim = a if maf[local[a]] <= maf[local[b]] else b
                alive[victim] = False
            keep[local[~alive]] = False
        if stop == n_snps:
            break
        start += step
    return np.flatnonzero(keep)
