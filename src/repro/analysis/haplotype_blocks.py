"""Haplotype-block partitioning from the banded LD matrix.

A classic consumer of mass-produced LD values: partition a region into
blocks of strong mutual LD (Gabriel et al. 2002 use D' confidence
intervals; many tools use simpler r²-based rules). This implementation is
the standard greedy r² variant:

- a block is a maximal contiguous SNP run in which at least
  ``min_fraction`` of all within-run pairs (up to ``window`` apart) have
  ``r² >= r2_threshold``;
- blocks are grown left-to-right and never overlap.

It consumes the :class:`~repro.core.windowed.BandedLDMatrix`, so the LD
cost for a whole chromosome is ``O(n·window)`` kernel work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.windowed import BandedLDMatrix, banded_ld
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["HaplotypeBlock", "find_haplotype_blocks"]


@dataclass(frozen=True)
class HaplotypeBlock:
    """One block: SNP index range ``[start, stop)`` and its LD summary."""

    start: int
    stop: int
    mean_r2: float

    @property
    def n_snps(self) -> int:
        """SNPs in the block."""
        return self.stop - self.start


def find_haplotype_blocks(
    data: BitMatrix | np.ndarray,
    *,
    window: int = 50,
    r2_threshold: float = 0.5,
    min_fraction: float = 0.7,
    min_block_snps: int = 2,
    params: BlockingParams | None = None,
    band: BandedLDMatrix | None = None,
) -> list[HaplotypeBlock]:
    """Greedy haplotype-block partition of a SNP region.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    window:
        Maximum pair distance considered (and the banded-LD window).
    r2_threshold:
        Pairs at or above this r² count as "strong".
    min_fraction:
        Minimum fraction of strong within-block pairs for the block to
        keep growing.
    min_block_snps:
        Blocks smaller than this are not reported.
    band:
        Optionally a precomputed banded r² matrix (must use ``stat="r2"``
        and a window ≥ *window*).
    """
    if not 0.0 < r2_threshold <= 1.0:
        raise ValueError(f"r2_threshold must be in (0, 1], got {r2_threshold}")
    if not 0.0 < min_fraction <= 1.0:
        raise ValueError(f"min_fraction must be in (0, 1], got {min_fraction}")
    if band is None:
        band = banded_ld(data, window=window, stat="r2", params=params)
    elif band.stat != "r2" or band.window < window:
        raise ValueError(
            "precomputed band must hold r2 with window >= the requested window"
        )
    n = band.n_snps
    blocks: list[HaplotypeBlock] = []
    start = 0
    while start < n - 1:
        stop = start + 1
        strong_values: list[float] = []
        all_values: list[float] = []
        while stop < n:
            # Candidate extension: add SNP `stop`, check its pairs into the
            # current block.
            new_vals = []
            for back in range(1, min(window, stop - start) + 1):
                value = band.values[stop - back, back]
                if not np.isnan(value):
                    new_vals.append(float(value))
            candidate_all = all_values + new_vals
            candidate_strong = strong_values + [
                v for v in new_vals if v >= r2_threshold
            ]
            if candidate_all and (
                len(candidate_strong) / len(candidate_all) >= min_fraction
            ):
                all_values = candidate_all
                strong_values = candidate_strong
                stop += 1
            else:
                break
        if stop - start >= min_block_snps and all_values:
            blocks.append(
                HaplotypeBlock(
                    start=start,
                    stop=stop,
                    mean_r2=float(np.mean(all_values)),
                )
            )
            start = stop
        else:
            start += 1
    return blocks
