"""Higher-order (three-locus) LD — the paper's "more specialized use-cases".

The related-work section points at higher-order LD (its reference [28],
Slatkin 2008) as a natural extension of the framework. Bennett's
third-order disequilibrium coefficient for loci ``(i, j, k)`` is

    D_ijk = P_ijk − p_i·D_jk − p_j·D_ik − p_k·D_ij − p_i·p_j·p_k

where ``P_ijk`` is the three-way haplotype frequency and ``D_xy`` the
pairwise coefficients. Like everything else in the paper, the new
ingredient is a popcount inner product — ``POPCNT(s_i & s_j & s_k)`` — and
it too casts as GEMM: fixing locus *i*, the matrix of counts over (j, k)
is one popcount GEMM between the *i-masked* SNP rows ``s_i & s_j`` and the
plain rows ``s_k``. A window of W SNPs therefore costs W GEMMs of W×W —
the same rank-k kernels, one order higher.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL, popcount_gemm
from repro.core.ldmatrix import as_bitmatrix
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["third_order_d", "third_order_d_window"]


def third_order_d(
    data: BitMatrix | np.ndarray,
    triples: np.ndarray,
) -> np.ndarray:
    """Bennett's D_ijk for an explicit list of locus triples.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    triples:
        Integer array of shape ``(n_triples, 3)``.

    Returns
    -------
    Array of ``D_ijk`` values aligned with *triples*.
    """
    matrix = as_bitmatrix(data)
    triples = np.asarray(triples)
    if triples.ndim != 2 or triples.shape[1] != 3:
        raise ValueError(f"triples must have shape (n, 3), got {triples.shape}")
    if triples.size and (triples.min() < 0 or triples.max() >= matrix.n_snps):
        raise ValueError("triple indices out of range")
    if matrix.n_samples == 0:
        raise ValueError("LD undefined for zero samples")
    inv_n = 1.0 / matrix.n_samples
    words = matrix.words
    p = matrix.allele_frequencies()

    out = np.empty(triples.shape[0])
    for idx, (i, j, k) in enumerate(triples):
        w_ij = words[i] & words[j]
        p_ijk = float(np.bitwise_count(w_ij & words[k]).sum()) * inv_n
        p_ij = float(np.bitwise_count(w_ij).sum()) * inv_n
        p_ik = float(np.bitwise_count(words[i] & words[k]).sum()) * inv_n
        p_jk = float(np.bitwise_count(words[j] & words[k]).sum()) * inv_n
        d_ij = p_ij - p[i] * p[j]
        d_ik = p_ik - p[i] * p[k]
        d_jk = p_jk - p[j] * p[k]
        out[idx] = (
            p_ijk
            - p[i] * d_jk
            - p[j] * d_ik
            - p[k] * d_ij
            - p[i] * p[j] * p[k]
        )
    return out


def third_order_d_window(
    data: BitMatrix | np.ndarray,
    start: int,
    stop: int,
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
) -> np.ndarray:
    """All D_ijk within the SNP window ``[start, stop)`` via W GEMMs.

    Returns a ``(W, W, W)`` array over local indices; only entries with
    ``i < j < k`` are meaningful for interpretation (the coefficient is
    symmetric under permutation, and the full cube is filled consistently).
    """
    matrix = as_bitmatrix(data)
    if not 0 <= start < stop <= matrix.n_snps:
        raise ValueError(
            f"window [{start}, {stop}) out of range for {matrix.n_snps} SNPs"
        )
    if matrix.n_samples == 0:
        raise ValueError("LD undefined for zero samples")
    w = stop - start
    words = matrix.words[start:stop]
    inv_n = 1.0 / matrix.n_samples
    p = matrix.allele_frequencies()[start:stop]

    # Pairwise layer: one GEMM.
    pair_h = (
        popcount_gemm(words, words, params=params, kernel=kernel) * inv_n
    )
    pair_d = pair_h - np.outer(p, p)

    # Triple layer: for each i, GEMM of the i-masked rows against all rows.
    out = np.empty((w, w, w))
    for i in range(w):
        masked = words & words[i][None, :]
        triple_h = (
            popcount_gemm(masked, words, params=params, kernel=kernel) * inv_n
        )
        # D_ijk over (j, k) for this i.
        out[i] = (
            triple_h
            - p[i] * pair_d                        # p_i * D_jk
            - p[:, None] * pair_d[i][None, :]      # p_j * D_ik
            - pair_d[:, i][:, None] * p[None, :]   # p_k * D_ij
            - p[i] * np.outer(p, p)                # p_i p_j p_k
        )
    return out
