"""LD decay with physical distance.

A standard population-genetics summary: mean r² between SNP pairs binned by
their genomic separation. Recombination makes LD decay with distance, and
the decay rate calibrates a population's effective recombination rate — it
is also the property that makes the simulated datasets in
:mod:`repro.simulate` behaviourally realistic, so this module doubles as a
validation instrument for the coalescent generator.

Built directly on the GEMM LD matrix: one blocked GEMM, then a distance-bin
reduction over its upper triangle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL
from repro.core.ldmatrix import as_bitmatrix, compute_ld
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["DecayCurve", "ld_decay_curve"]


@dataclass(frozen=True)
class DecayCurve:
    """Binned LD-decay summary.

    Attributes
    ----------
    bin_edges:
        Distance-bin edges (length ``n_bins + 1``).
    mean_r2:
        Mean r² per bin (NaN for empty bins).
    counts:
        Number of SNP pairs per bin.
    """

    bin_edges: np.ndarray
    mean_r2: np.ndarray
    counts: np.ndarray

    @property
    def bin_centers(self) -> np.ndarray:
        """Midpoints of the distance bins."""
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])

    def half_decay_distance(self) -> float:
        """Distance at which mean r² first drops below half its first-bin value.

        NaN when the curve never drops that far (or has no populated bins).
        """
        populated = np.flatnonzero(self.counts > 0)
        if populated.size == 0:
            return float("nan")
        baseline = self.mean_r2[populated[0]]
        for idx in populated:
            if self.mean_r2[idx] <= baseline / 2.0:
                return float(self.bin_centers[idx])
        return float("nan")


def ld_decay_curve(
    data: BitMatrix | np.ndarray,
    positions: np.ndarray,
    *,
    n_bins: int = 20,
    max_distance: float | None = None,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
) -> DecayCurve:
    """Mean r² as a function of pairwise genomic distance.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    positions:
        Genomic coordinate per SNP (monotonic not required, but typical).
    n_bins:
        Number of equal-width distance bins.
    max_distance:
        Upper edge of the last bin; defaults to the maximum observed pair
        distance.
    """
    matrix = as_bitmatrix(data)
    positions = np.asarray(positions, dtype=np.float64)
    if positions.size != matrix.n_snps:
        raise ValueError(
            f"got {positions.size} positions for {matrix.n_snps} SNPs"
        )
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if matrix.n_snps < 2:
        raise ValueError("need at least 2 SNPs for a decay curve")
    r2 = compute_ld(matrix, params=params, kernel=kernel).r2()
    iu = np.triu_indices(matrix.n_snps, k=1)
    dist = np.abs(positions[iu[0]] - positions[iu[1]])
    vals = r2[iu]
    defined = ~np.isnan(vals)
    dist, vals = dist[defined], vals[defined]
    if max_distance is None:
        max_distance = float(dist.max()) if dist.size else 1.0
    if max_distance <= 0:
        raise ValueError(f"max_distance must be positive, got {max_distance}")
    edges = np.linspace(0.0, max_distance, n_bins + 1)
    which = np.clip(np.digitize(dist, edges) - 1, 0, n_bins - 1)
    in_range = dist <= max_distance
    counts = np.bincount(which[in_range], minlength=n_bins)
    sums = np.bincount(which[in_range], weights=vals[in_range], minlength=n_bins)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return DecayCurve(bin_edges=edges, mean_r2=means, counts=counts)
