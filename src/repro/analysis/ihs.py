"""The iHS statistic (integrated haplotype score, Voight et al. 2006).

Completes the EHH family started in :mod:`repro.analysis.ehh`: for every
candidate SNP, integrate EHH outward in both directions for the derived
and ancestral core alleles, take

    uiHS = ln( iHH_ancestral / iHH_derived )

and standardize within derived-allele-frequency bins (iHH depends strongly
on frequency under neutrality, so the z-score is computed against SNPs of
similar frequency). Extreme negative scores mark unusually long derived
haplotypes — ongoing/incomplete sweeps — complementing the post-fixation
ω statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ehh import ehh_decay, integrated_ehh
from repro.core.ldmatrix import as_bitmatrix
from repro.encoding.bitmatrix import BitMatrix

__all__ = ["IhsResult", "ihs_scan", "unstandardized_ihs"]


def unstandardized_ihs(
    data: BitMatrix | np.ndarray,
    core: int,
    *,
    max_distance: int = 100,
    cutoff: float = 0.05,
) -> float:
    """uiHS = ln(iHH_A / iHH_D) at one core SNP; NaN when undefined.

    iHH integrates EHH leftward and rightward from the core (the two
    directions' areas add). Undefined when either allele's iHH is zero or
    when an allele class has < 2 carriers.
    """
    matrix = as_bitmatrix(data)
    ihh_d = ihh_a = 0.0
    for direction in (+1, -1):
        curve = ehh_decay(
            matrix, core, max_distance=max_distance, direction=direction
        )
        d_part, a_part = integrated_ehh(curve, cutoff=cutoff)
        if np.isnan(d_part) or np.isnan(a_part):
            return float("nan")
        ihh_d += d_part
        ihh_a += a_part
    if ihh_d <= 0.0 or ihh_a <= 0.0:
        return float("nan")
    return float(np.log(ihh_a / ihh_d))


@dataclass(frozen=True)
class IhsResult:
    """Genome-scan iHS output.

    Attributes
    ----------
    snps:
        Indices of the SNPs scored (those passing the frequency filter).
    frequencies:
        Derived-allele frequency per scored SNP.
    uihs:
        Unstandardized scores.
    ihs:
        Frequency-bin-standardized scores (NaN where undefined or the bin
        was too small to standardize).
    """

    snps: np.ndarray
    frequencies: np.ndarray
    uihs: np.ndarray
    ihs: np.ndarray

    def extreme(self, threshold: float = 2.0) -> np.ndarray:
        """SNP indices with |iHS| above *threshold* (sweep candidates)."""
        defined = ~np.isnan(self.ihs)
        return self.snps[defined & (np.abs(self.ihs) > threshold)]


def ihs_scan(
    data: BitMatrix | np.ndarray,
    *,
    maf_min: float = 0.05,
    max_distance: int = 100,
    cutoff: float = 0.05,
    n_freq_bins: int = 10,
    min_bin_size: int = 5,
) -> IhsResult:
    """iHS at every SNP above the MAF floor, standardized by frequency bin.

    Parameters
    ----------
    data:
        Dense binary ``(n_samples, n_snps)`` matrix or packed
        :class:`BitMatrix`.
    maf_min:
        Minor-allele-frequency floor (low-frequency cores have no power
        and unstable iHH).
    max_distance, cutoff:
        EHH integration range and truncation level.
    n_freq_bins:
        Derived-frequency bins for standardization.
    min_bin_size:
        Bins with fewer defined scores than this leave their members
        unstandardized (NaN).
    """
    matrix = as_bitmatrix(data)
    if not 0.0 <= maf_min < 0.5:
        raise ValueError(f"maf_min must be in [0, 0.5), got {maf_min}")
    if n_freq_bins < 1:
        raise ValueError(f"n_freq_bins must be >= 1, got {n_freq_bins}")
    freqs = matrix.allele_frequencies()
    maf = np.minimum(freqs, 1.0 - freqs)
    snps = np.flatnonzero(maf >= maf_min)
    uihs = np.array(
        [
            unstandardized_ihs(
                matrix, int(snp), max_distance=max_distance, cutoff=cutoff
            )
            for snp in snps
        ]
    )
    ihs = np.full(snps.size, np.nan)
    if snps.size:
        bins = np.clip(
            (freqs[snps] * n_freq_bins).astype(int), 0, n_freq_bins - 1
        )
        for b in range(n_freq_bins):
            members = np.flatnonzero(bins == b)
            values = uihs[members]
            defined = ~np.isnan(values)
            if defined.sum() >= min_bin_size:
                mean = values[defined].mean()
                std = values[defined].std()
                if std > 0:
                    ihs[members] = (values - mean) / std
    return IhsResult(
        snps=snps, frequencies=freqs[snps], uihs=uihs, ihs=ihs
    )
