"""The ω statistic of Kim & Nielsen (2004) — LD signature of selective sweeps.

Selective-sweep theory (paper Section I) predicts that around a recently
fixed beneficial mutation, LD is *high within* each flank of the selected
site but *low across* it. The ω statistic quantifies that contrast: for a
window of S SNPs split after the ℓ-th into a left set L and right set R,

              ( C(ℓ,2) + C(S−ℓ,2) )⁻¹ ( Σ_{i<j∈L} r²_ij + Σ_{i<j∈R} r²_ij )
    ω(ℓ) =   ─────────────────────────────────────────────────────────────
              ( ℓ (S−ℓ) )⁻¹  Σ_{i∈L, j∈R} r²_ij

(large ω ⇒ sweep-like pattern). OmegaPlus evaluates ω on a grid of genomic
positions, maximizing over the split; this module provides those evaluations
*given* an r² matrix — which is where the paper's GEMM formulation plugs in:
compute all r² values with one blocked GEMM, then every ω evaluation is a
cheap reduction. The comparator that computes LD per-pair on demand instead
lives in :mod:`repro.baselines.omegaplus`.

Sums are taken over within-flank prefix/suffix blocks of the r² matrix, so a
full ω(ℓ) profile for one window costs O(S²) total via cumulative updates.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "omega_at_split",
    "omega_max",
    "omega_max_flanks",
    "omega_profile",
    "omega_scan_from_ld",
]


def _validate_window(r2: np.ndarray) -> np.ndarray:
    r2 = np.asarray(r2, dtype=np.float64)
    if r2.ndim != 2 or r2.shape[0] != r2.shape[1]:
        raise ValueError(f"r2 window must be square, got shape {r2.shape}")
    return r2


def omega_at_split(r2: np.ndarray, ell: int) -> float:
    """ω for one window and one split (left set = first *ell* SNPs).

    Pairs with undefined r² (NaN, from monomorphic SNPs) contribute zero,
    matching OmegaPlus's treatment of non-informative sites.
    """
    r2 = _validate_window(r2)
    s = r2.shape[0]
    if not 2 <= ell <= s - 2:
        raise ValueError(
            f"split ell={ell} must leave >=2 SNPs on each side of a {s}-SNP window"
        )
    clean = np.nan_to_num(r2, nan=0.0)
    iu = np.triu_indices(ell, k=1)
    left_sum = float(clean[:ell, :ell][iu].sum())
    r = s - ell
    iu_r = np.triu_indices(r, k=1)
    right_sum = float(clean[ell:, ell:][iu_r].sum())
    cross_sum = float(clean[:ell, ell:].sum())
    n_within = ell * (ell - 1) // 2 + r * (r - 1) // 2
    numer = (left_sum + right_sum) / n_within
    denom = cross_sum / (ell * r)
    if denom == 0.0:
        # No cross-flank LD at all: OmegaPlus reports 0 rather than infinity
        # when the numerator is also empty, else a large finite sentinel.
        return 0.0 if numer == 0.0 else float("inf")
    return numer / denom


def omega_profile(r2: np.ndarray) -> np.ndarray:
    """ω(ℓ) for every admissible split of one window, via cumulative sums.

    Returns an array of length ``s + 1`` with NaN at inadmissible splits
    (ℓ < 2 or ℓ > s−2) and ω(ℓ) elsewhere; computed in O(s²) total.
    """
    r2 = _validate_window(r2)
    s = r2.shape[0]
    out = np.full(s + 1, np.nan)
    if s < 4:
        return out
    clean = np.nan_to_num(r2, nan=0.0)
    iu = np.triu_indices(s, k=1)
    total_upper = float(clean[iu].sum())
    # prefix_within[l] = sum of r2 over pairs inside the first l SNPs;
    # cross_by_split[l] = sum over pairs straddling the split, updated
    # incrementally as each SNP moves from the right set to the left.
    prefix_within = np.zeros(s + 1)
    cross = 0.0
    cross_by_split = np.zeros(s + 1)
    for ell in range(1, s + 1):
        new = ell - 1  # SNP moving from the right set to the left set
        col_with_left = float(clean[:new, new].sum())
        row_with_right = float(clean[new, ell:].sum())
        prefix_within[ell] = prefix_within[ell - 1] + col_with_left
        # Moving SNP `new` left: its pairs with the remaining right set join
        # the cross term; its pairs with the previous left set leave it.
        cross = cross - col_with_left + row_with_right
        cross_by_split[ell] = cross
    for ell in range(2, s - 1):
        r = s - ell
        left_sum = prefix_within[ell]
        right_sum = total_upper - prefix_within[ell] - cross_by_split[ell]
        n_within = ell * (ell - 1) // 2 + r * (r - 1) // 2
        numer = (left_sum + right_sum) / n_within
        denom = cross_by_split[ell] / (ell * r)
        if denom == 0.0:
            out[ell] = 0.0 if numer == 0.0 else float("inf")
        else:
            out[ell] = numer / denom
    return out


def omega_max(r2: np.ndarray) -> tuple[float, int]:
    """Maximum ω over all admissible splits of one window.

    Returns ``(omega, best_ell)``; ``(0.0, 0)`` when the window is too small
    (fewer than 4 SNPs).
    """
    profile = omega_profile(r2)
    if np.all(np.isnan(profile)):
        return 0.0, 0
    best = int(np.nanargmax(profile))
    return float(profile[best]), best


def omega_max_flanks(
    r2: np.ndarray,
    center: int,
    *,
    min_flank: int = 2,
    max_flank: int | None = None,
) -> tuple[float, int, int]:
    """Maximize ω over *both* flank extents around a fixed boundary.

    This is OmegaPlus's actual search: the boundary (candidate sweep
    location) sits between SNPs ``center − 1`` and ``center``; the left
    flank is the last ``l`` SNPs before it, the right flank the first
    ``r`` after it, and ω is maximized over ``l, r ∈ [min_flank,
    max_flank]`` independently — unlike :func:`omega_max`, which fixes
    both flanks to exhaust a window and only moves the boundary.

    All ``(l, r)`` combinations are evaluated in O(L·R) total via
    incremental within-flank and cross-flank sums.

    Returns
    -------
    ``(omega, best_l, best_r)``; ``(0.0, 0, 0)`` when no admissible
    combination exists.
    """
    r2 = _validate_window(r2)
    s = r2.shape[0]
    if not 0 <= center <= s:
        raise ValueError(f"center {center} out of range for {s} SNPs")
    if min_flank < 2:
        raise ValueError(f"min_flank must be >= 2, got {min_flank}")
    clean = np.nan_to_num(r2, nan=0.0)
    max_l = center if max_flank is None else min(center, max_flank)
    max_r = s - center if max_flank is None else min(s - center, max_flank)
    if max_l < min_flank or max_r < min_flank:
        return 0.0, 0, 0

    # within_left[l] = Σ pairs inside the last l SNPs before the boundary.
    within_left = np.zeros(max_l + 1)
    for l in range(2, max_l + 1):
        new = center - l  # SNP joining the left flank
        within_left[l] = within_left[l - 1] + clean[
            new, new + 1 : center
        ].sum()
    within_right = np.zeros(max_r + 1)
    for r in range(2, max_r + 1):
        new = center + r - 1
        within_right[r] = within_right[r - 1] + clean[
            center : new, new
        ].sum()
    # cross[l, r] built from cumulative row sums of the cross block.
    cross_rows = np.cumsum(
        clean[center - max_l : center, center : center + max_r][::-1],
        axis=1,
    )  # cross_rows[l-1, r-1] = Σ_{j<r} r2[center-l, center+j]
    cross = np.zeros((max_l + 1, max_r + 1))
    cross[1:, 1:] = np.cumsum(cross_rows, axis=0)

    best = (0.0, 0, 0)
    for l in range(min_flank, max_l + 1):
        for r in range(min_flank, max_r + 1):
            n_within = l * (l - 1) // 2 + r * (r - 1) // 2
            numer = (within_left[l] + within_right[r]) / n_within
            denom = cross[l, r] / (l * r)
            if denom == 0.0:
                omega = 0.0 if numer == 0.0 else float("inf")
            else:
                omega = numer / denom
            if omega > best[0]:
                best = (float(omega), l, r)
    return best


def evaluate_grid_point(
    r2_window: np.ndarray,
    local_center: int,
    search: str,
    max_window: int,
) -> tuple[float, int]:
    """Shared grid-point evaluation for both scan paths.

    Returns ``(omega, local_split)`` where the split is the local index of
    the last left-flank SNP (−1 when inadmissible). ``search="split"``
    exhausts the window and moves the boundary (:func:`omega_max`);
    ``search="flanks"`` fixes the boundary at the grid position and
    maximizes over both flank extents (:func:`omega_max_flanks`,
    OmegaPlus's search).
    """
    if search == "split":
        omega, ell = omega_max(r2_window)
        return omega, (ell - 1) if ell else -1
    if search == "flanks":
        omega, left, _right = omega_max_flanks(
            r2_window, local_center, max_flank=max_window
        )
        return omega, (local_center - 1) if left else -1
    raise ValueError(f"unknown search {search!r}; choose 'split' or 'flanks'")


def omega_scan_from_ld(
    r2_full: np.ndarray,
    positions: np.ndarray,
    grid: np.ndarray,
    *,
    max_window: int = 100,
    search: str = "split",
) -> tuple[np.ndarray, np.ndarray]:
    """ω over a grid of genomic positions, from a precomputed r² matrix.

    This is the GEMM-accelerated OmegaPlus workflow: one blocked GEMM
    produces ``r2_full``; each grid evaluation then maximizes ω over the
    ≤``2·max_window``-SNP window centred at the grid position.

    Parameters
    ----------
    r2_full:
        All-pairs r² matrix of the region (``(n_snps, n_snps)``).
    positions:
        Monotonic genomic coordinates of the SNPs (length ``n_snps``).
    grid:
        Genomic coordinates at which to evaluate ω.
    max_window:
        Maximum SNPs per flank.
    search:
        ``"split"`` (default; exhaust the window, move the boundary) or
        ``"flanks"`` (fix the boundary at the grid position, maximize over
        both flank extents — OmegaPlus's search).

    Returns
    -------
    ``(omegas, best_splits)`` arrays aligned with *grid*; the split is
    reported as the global index of the last left-flank SNP (−1 when the
    local window was too small to evaluate).
    """
    r2_full = np.asarray(r2_full, dtype=np.float64)
    positions = np.asarray(positions, dtype=np.float64)
    if r2_full.shape != (positions.size, positions.size):
        raise ValueError(
            f"r2 shape {r2_full.shape} does not match {positions.size} positions"
        )
    if np.any(np.diff(positions) < 0):
        raise ValueError("positions must be sorted ascending")
    grid = np.asarray(grid, dtype=np.float64)
    omegas = np.zeros(grid.size)
    splits = np.full(grid.size, -1, dtype=np.int64)
    for g, center in enumerate(grid):
        mid = int(np.searchsorted(positions, center))
        lo = max(0, mid - max_window)
        hi = min(positions.size, mid + max_window)
        window = r2_full[lo:hi, lo:hi]
        omega, local_split = evaluate_grid_point(
            window, mid - lo, search, max_window
        )
        omegas[g] = omega
        if local_split >= 0:
            splits[g] = lo + local_split
    return omegas, splits
