"""Mini-GWAS: phenotype simulation, association testing, LD clumping.

The paper's opening motivation (Section I): "in genome-wide association
studies, LD is deployed to identify SNPs associated with certain traits of
interest". This module closes that loop end to end:

- :func:`simulate_phenotype` plants causal SNPs with given effect sizes in
  a liability-threshold case/control model;
- :func:`association_scan` runs the standard 2×2 allelic chi-square test
  per SNP (the canonical single-SNP GWAS test on haploid panels);
- :func:`ld_clump` post-processes the hit list the way PLINK ``--clump``
  does: greedily keep the most significant SNP, drop everything in LD with
  it (``r²`` above a threshold within a window), repeat — a direct
  consumer of the paper's mass-produced LD values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats

from repro.core.ldmatrix import as_bitmatrix, ld_pairs
from repro.encoding.bitmatrix import BitMatrix

__all__ = [
    "AssociationResult",
    "association_scan",
    "ld_clump",
    "simulate_phenotype",
]


def simulate_phenotype(
    data: BitMatrix | np.ndarray,
    causal_snps: np.ndarray,
    effect_sizes: np.ndarray,
    *,
    prevalence: float = 0.5,
    noise_sd: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Binary phenotype under a liability-threshold model.

    Liability = Σ effect·allele + Gaussian noise; individuals above the
    (1 − prevalence) quantile are cases.

    Returns a boolean case indicator per sample.
    """
    matrix = as_bitmatrix(data)
    causal_snps = np.asarray(causal_snps)
    effect_sizes = np.asarray(effect_sizes, dtype=np.float64)
    if causal_snps.shape != effect_sizes.shape or causal_snps.ndim != 1:
        raise ValueError("causal_snps and effect_sizes must be matching 1-D")
    if causal_snps.size and (
        causal_snps.min() < 0 or causal_snps.max() >= matrix.n_snps
    ):
        raise ValueError("causal SNP indices out of range")
    if not 0.0 < prevalence < 1.0:
        raise ValueError(f"prevalence must be in (0, 1), got {prevalence}")
    rng = rng or np.random.default_rng()
    dense = matrix.to_dense().astype(np.float64)
    liability = dense[:, causal_snps] @ effect_sizes
    liability += rng.normal(0.0, noise_sd, size=matrix.n_samples)
    threshold = np.quantile(liability, 1.0 - prevalence)
    return liability >= threshold


@dataclass(frozen=True)
class AssociationResult:
    """Per-SNP association-scan output.

    Attributes
    ----------
    chi2:
        Allelic 2×2 chi-square statistic per SNP (NaN where undefined).
    p_values:
        Corresponding p-values (1 df).
    case_freq, control_freq:
        Derived-allele frequency in cases / controls.
    """

    chi2: np.ndarray
    p_values: np.ndarray
    case_freq: np.ndarray
    control_freq: np.ndarray

    def hits(self, alpha: float = 5e-8) -> np.ndarray:
        """Indices of SNPs passing the significance threshold, best first."""
        significant = np.flatnonzero(self.p_values < alpha)
        return significant[np.argsort(self.p_values[significant])]


def association_scan(
    data: BitMatrix | np.ndarray, is_case: np.ndarray
) -> AssociationResult:
    """Allelic chi-square association test at every SNP.

    The 2×2 table per SNP counts derived/ancestral alleles in cases vs
    controls; the statistic is the classic ``N (ad − bc)² / (row/col
    products)`` with 1 df. Monomorphic SNPs (or empty case/control groups)
    yield NaN.
    """
    matrix = as_bitmatrix(data)
    is_case = np.asarray(is_case, dtype=bool)
    if is_case.shape != (matrix.n_samples,):
        raise ValueError(
            f"is_case must have shape ({matrix.n_samples},), got {is_case.shape}"
        )
    n_cases = int(is_case.sum())
    n_controls = matrix.n_samples - n_cases
    if n_cases == 0 or n_controls == 0:
        raise ValueError("need at least one case and one control")
    dense = matrix.to_dense()
    case_counts = dense[is_case].sum(axis=0).astype(np.float64)
    control_counts = dense[~is_case].sum(axis=0).astype(np.float64)
    a = case_counts                     # derived in cases
    b = n_cases - case_counts           # ancestral in cases
    c = control_counts                  # derived in controls
    d = n_controls - control_counts     # ancestral in controls
    n = float(matrix.n_samples)
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = (a + b) * (c + d) * (a + c) * (b + d)
        chi2 = np.where(denom > 0, n * (a * d - b * c) ** 2 / denom, np.nan)
        p_values = np.where(
            np.isnan(chi2), np.nan, sp_stats.chi2.sf(chi2, df=1)
        )
    return AssociationResult(
        chi2=chi2,
        p_values=p_values,
        case_freq=case_counts / n_cases,
        control_freq=control_counts / n_controls,
    )


def ld_clump(
    data: BitMatrix | np.ndarray,
    p_values: np.ndarray,
    *,
    p_threshold: float = 1e-4,
    r2_threshold: float = 0.5,
    window: int = 250,
) -> list[tuple[int, np.ndarray]]:
    """Greedy LD clumping of association hits (PLINK ``--clump`` semantics).

    Repeatedly takes the most significant unclaimed SNP below
    *p_threshold* as an index SNP, claims every unclaimed SNP within
    *window* positions whose r² with the index is at or above
    *r2_threshold*, and reports ``(index_snp, claimed_members)`` clumps in
    significance order.
    """
    matrix = as_bitmatrix(data)
    p_values = np.asarray(p_values, dtype=np.float64)
    if p_values.shape != (matrix.n_snps,):
        raise ValueError(
            f"p_values must have shape ({matrix.n_snps},), got {p_values.shape}"
        )
    if not 0 < r2_threshold <= 1:
        raise ValueError(f"r2_threshold must be in (0, 1], got {r2_threshold}")
    candidates = np.flatnonzero(
        ~np.isnan(p_values) & (p_values < p_threshold)
    )
    order = candidates[np.argsort(p_values[candidates])]
    unclaimed = set(order.tolist())
    clumps: list[tuple[int, np.ndarray]] = []
    for index_snp in order:
        if index_snp not in unclaimed:
            continue
        unclaimed.discard(int(index_snp))
        nearby = [
            j for j in unclaimed if abs(j - int(index_snp)) <= window
        ]
        members = []
        if nearby:
            pairs = np.array([[index_snp, j] for j in nearby])
            r2 = ld_pairs(matrix, pairs, stat="r2", undefined=0.0)
            for j, value in zip(nearby, r2):
                if value >= r2_threshold:
                    members.append(j)
                    unclaimed.discard(j)
        clumps.append((int(index_snp), np.array(sorted(members), dtype=int)))
    return clumps
