"""Applications of LD (paper Sections VI–VII).

Everything downstream of the LD kernel:

- :mod:`repro.analysis.omega` — the ω statistic of Kim & Nielsen (2004),
  the quantity OmegaPlus computes; here accelerated by the GEMM LD matrix.
- :mod:`repro.analysis.sweeps` — selective-sweep scans built on ω.
- :mod:`repro.analysis.ldprune` — PLINK-style ``--indep-pairwise`` LD
  pruning (GWAS preprocessing).
- :mod:`repro.analysis.decay` — LD decay with physical distance.
- :mod:`repro.analysis.gaps` — gap-aware LD via validity masks (§VII).
- :mod:`repro.analysis.fsm_ld` — finite-sites T statistic (Zaykin et al.,
  Eq. 6 of the paper) over four-bit-plane encodings (§VII).
- :mod:`repro.analysis.tanimoto` — Tanimoto 2D-fingerprint similarity as the
  same popcount GEMM (§VII, Eq. 7).
"""

from repro.analysis.association import (
    AssociationResult,
    association_scan,
    ld_clump,
    simulate_phenotype,
)
from repro.analysis.decay import ld_decay_curve
from repro.analysis.ehh import EhhCurve, ehh_decay, integrated_ehh
from repro.analysis.fsm_ld import fsm_ld_matrix, fsm_ld_pair
from repro.analysis.gaps import masked_ld_matrix, masked_ld_pair
from repro.analysis.haplotype_blocks import HaplotypeBlock, find_haplotype_blocks
from repro.analysis.higher_order import third_order_d, third_order_d_window
from repro.analysis.ihs import IhsResult, ihs_scan, unstandardized_ihs
from repro.analysis.kinship import kinship_matrix
from repro.analysis.ldprune import ld_prune
from repro.analysis.summaries import kelly_zns, mean_abs_d_prime, walls_b
from repro.analysis.omega import (
    omega_at_split,
    omega_max,
    omega_max_flanks,
    omega_scan_from_ld,
)
from repro.analysis.sweeps import SweepScanResult, sweep_scan
from repro.analysis.tanimoto import tanimoto_matrix, tanimoto_pair

__all__ = [
    "AssociationResult",
    "association_scan",
    "ld_clump",
    "simulate_phenotype",
    "EhhCurve",
    "ehh_decay",
    "integrated_ehh",
    "ld_decay_curve",
    "fsm_ld_matrix",
    "fsm_ld_pair",
    "masked_ld_matrix",
    "masked_ld_pair",
    "HaplotypeBlock",
    "find_haplotype_blocks",
    "third_order_d",
    "third_order_d_window",
    "IhsResult",
    "ihs_scan",
    "unstandardized_ihs",
    "kelly_zns",
    "mean_abs_d_prime",
    "walls_b",
    "ld_prune",
    "kinship_matrix",
    "omega_at_split",
    "omega_max",
    "omega_max_flanks",
    "omega_scan_from_ld",
    "SweepScanResult",
    "sweep_scan",
    "tanimoto_matrix",
    "tanimoto_pair",
]
