"""Finite-sites LD: the multi-allelic T statistic (paper Section VII, Eq. 6).

Under a finite-sites model each SNP carries up to four states, encoded as
four bit planes (:class:`~repro.encoding.fsm.FiniteSitesMatrix`). Following
Zaykin, Pudovkin & Weir (2008) as quoted by the paper, the pairwise statistic
is

    T_ij = ((v_i − 1)(v_j − 1) v_ij) / (v_i v_j) · Σ_{a,b ∈ S} r²_{ab}

where ``v_i``/``v_j`` count the observed states at each SNP, ``v_ij`` counts
the valid (gap-free at both SNPs) sample pairs, and each ``r²_{ab}`` is the
ordinary two-state r² (Eq. 2) between indicator vectors "state *a* at SNP i"
and "state *b* at SNP j" over the jointly valid samples. Up to 4 × 4 = 16
state combinations contribute — the "16 times more computations than the
ISM" worst case the paper quotes.

Every ingredient is again a popcount GEMM: because a plane bit implies a
valid state, ``plane_a[i] & plane_b[j] ⊆ c_ij`` automatically, so

    joint counts  : 16 GEMMs   gram/gemm over (plane_a, plane_b)
    marginals     : 8 GEMMs    gemm(plane_a, valid) and gemm(valid, plane_b)
    sample sizes  : 1 GEMM     gram(valid)

which is exactly how :func:`fsm_ld_matrix` is built.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocking import BlockingParams
from repro.core.gemm import DEFAULT_KERNEL, popcount_gemm
from repro.encoding.fsm import DNA_STATES, FiniteSitesMatrix

__all__ = ["fsm_ld_matrix", "fsm_ld_pair"]


def fsm_ld_pair(matrix: FiniteSitesMatrix, i: int, j: int) -> float:
    """T statistic (Eq. 6) for one SNP pair; NaN when undefined.

    Undefined when either SNP has a single observed state among the jointly
    valid samples, or no sample is valid at both SNPs.
    """
    valid = matrix.validity_mask().words
    c_ij = valid[i] & valid[j]
    n_ij = int(np.bitwise_count(c_ij).sum())
    if n_ij == 0:
        return float("nan")
    plane_words = [plane.words for plane in matrix.planes]
    counts_i = np.array(
        [int(np.bitwise_count(w[i] & c_ij).sum()) for w in plane_words]
    )
    counts_j = np.array(
        [int(np.bitwise_count(w[j] & c_ij).sum()) for w in plane_words]
    )
    v_i = int((counts_i > 0).sum())
    v_j = int((counts_j > 0).sum())
    if v_i < 2 or v_j < 2:
        return float("nan")
    r2_sum = 0.0
    for a in range(len(DNA_STATES)):
        p_a = counts_i[a] / n_ij
        if not 0.0 < p_a < 1.0:
            continue
        for b in range(len(DNA_STATES)):
            p_b = counts_j[b] / n_ij
            if not 0.0 < p_b < 1.0:
                continue
            joint = int(
                np.bitwise_count(plane_words[a][i] & plane_words[b][j]).sum()
            )
            d = joint / n_ij - p_a * p_b
            r2_sum += d * d / (p_a * p_b * (1.0 - p_a) * (1.0 - p_b))
    return ((v_i - 1) * (v_j - 1) * n_ij) / (v_i * v_j) * r2_sum


def fsm_ld_matrix(
    matrix: FiniteSitesMatrix,
    *,
    params: BlockingParams | None = None,
    kernel: str = DEFAULT_KERNEL,
    undefined: float = np.nan,
) -> np.ndarray:
    """All-pairs T statistic via 25 blocked popcount GEMMs.

    Notes
    -----
    State counts and frequencies are evaluated over each pair's jointly
    valid sample set (``c_ij``), matching :func:`fsm_ld_pair` exactly —
    including ``v_i``/``v_j``, which can differ between pairs of the same
    SNP when gaps overlap differently.
    """
    valid = matrix.validity_mask().words
    n_snps = matrix.n_snps
    plane_words = [plane.words for plane in matrix.planes]
    n_states = len(DNA_STATES)

    n_ij = popcount_gemm(valid, valid, params=params, kernel=kernel).astype(
        np.float64
    )
    # counts_left[a][i, j] = #samples with state a at SNP i, valid at SNP j.
    counts_left = [
        popcount_gemm(w, valid, params=params, kernel=kernel).astype(np.float64)
        for w in plane_words
    ]
    counts_right = [
        popcount_gemm(valid, w, params=params, kernel=kernel).astype(np.float64)
        for w in plane_words
    ]
    v_left = sum((c > 0).astype(np.int64) for c in counts_left)
    v_right = sum((c > 0).astype(np.int64) for c in counts_right)

    with np.errstate(divide="ignore", invalid="ignore"):
        r2_sum = np.zeros((n_snps, n_snps))
        for a in range(n_states):
            p_a = counts_left[a] / n_ij
            informative_a = (p_a > 0.0) & (p_a < 1.0)
            for b in range(n_states):
                joint = popcount_gemm(
                    plane_words[a], plane_words[b], params=params, kernel=kernel
                )
                p_b = counts_right[b] / n_ij
                informative = informative_a & (p_b > 0.0) & (p_b < 1.0)
                d = joint / n_ij - p_a * p_b
                denom = p_a * p_b * (1.0 - p_a) * (1.0 - p_b)
                contrib = np.where(informative, d * d / denom, 0.0)
                r2_sum += np.nan_to_num(contrib, nan=0.0)
        scale = ((v_left - 1) * (v_right - 1) * n_ij) / (v_left * v_right)
        t = scale * r2_sum
    defined = (n_ij > 0) & (v_left >= 2) & (v_right >= 2)
    return np.where(defined, t, undefined)
