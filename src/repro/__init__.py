"""GEMM-based linkage-disequilibrium computation.

A from-scratch reproduction of *"Efficient Computation of Linkage
Disequilibria as Dense Linear Algebra Operations"* (Alachiotis, Popovici &
Low, IPPS 2016): the all-pairs LD matrix computed as a blocked,
GotoBLAS-style popcount GEMM over a bit-packed genomic matrix, together with
the baselines (PLINK-1.9-style, OmegaPlus-style, naive), the analytical
machine model behind the paper's %-of-peak and SIMD analyses, data
simulators, and downstream applications (ω-statistic sweep scans, LD
pruning, LD decay, Tanimoto similarity).

Quickstart
----------
>>> import numpy as np
>>> from repro import ld_matrix
>>> rng = np.random.default_rng(0)
>>> G = rng.integers(0, 2, size=(100, 20))   # 100 samples x 20 SNPs
>>> r2 = ld_matrix(G)                        # all-pairs r-squared
>>> r2.shape
(20, 20)
"""

import numpy as _np


def _require_numpy_2(module=_np) -> None:
    """Fail fast on NumPy < 2.0 with an actionable message.

    The packed kernels call ``np.bitwise_count`` throughout (popcount.py,
    bitmatrix.py, the GEMM micro-kernels, ...), which only exists in
    NumPy >= 2.0 — on a 1.x install every hot path would crash with a
    bare ``AttributeError`` deep inside a kernel. Checking the capability
    (not the version string) keeps the guard honest under monkeypatching
    and future renames.
    """
    if not hasattr(module, "bitwise_count"):
        version = getattr(module, "__version__", "unknown")
        raise ImportError(
            f"repro requires NumPy >= 2.0 (np.bitwise_count is used by the "
            f"packed popcount kernels) but NumPy {version} is installed. "
            f"Upgrade with: pip install 'numpy>=2.0'"
        )


_require_numpy_2()

from repro.core.blocking import BlockingParams, DEFAULT_BLOCKING, select_blocking
from repro.core.ldmatrix import LDResult, compute_ld, ld_cross, ld_matrix, ld_pairs
from repro.core.windowed import banded_ld
from repro.encoding.bitmatrix import BitMatrix
from repro.encoding.genotypes import GenotypeMatrix, genotypes_from_haplotypes
from repro.encoding.masks import ValidityMask

__version__ = "1.0.0"

__all__ = [
    "BlockingParams",
    "DEFAULT_BLOCKING",
    "select_blocking",
    "LDResult",
    "compute_ld",
    "banded_ld",
    "ld_cross",
    "ld_matrix",
    "ld_pairs",
    "BitMatrix",
    "GenotypeMatrix",
    "genotypes_from_haplotypes",
    "ValidityMask",
    "__version__",
]
