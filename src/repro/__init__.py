"""GEMM-based linkage-disequilibrium computation.

A from-scratch reproduction of *"Efficient Computation of Linkage
Disequilibria as Dense Linear Algebra Operations"* (Alachiotis, Popovici &
Low, IPPS 2016): the all-pairs LD matrix computed as a blocked,
GotoBLAS-style popcount GEMM over a bit-packed genomic matrix, together with
the baselines (PLINK-1.9-style, OmegaPlus-style, naive), the analytical
machine model behind the paper's %-of-peak and SIMD analyses, data
simulators, and downstream applications (ω-statistic sweep scans, LD
pruning, LD decay, Tanimoto similarity).

Quickstart
----------
>>> import numpy as np
>>> from repro import ld_matrix
>>> rng = np.random.default_rng(0)
>>> G = rng.integers(0, 2, size=(100, 20))   # 100 samples x 20 SNPs
>>> r2 = ld_matrix(G)                        # all-pairs r-squared
>>> r2.shape
(20, 20)
"""

from repro.core.blocking import BlockingParams, DEFAULT_BLOCKING, select_blocking
from repro.core.ldmatrix import LDResult, compute_ld, ld_cross, ld_matrix, ld_pairs
from repro.core.windowed import banded_ld
from repro.encoding.bitmatrix import BitMatrix
from repro.encoding.genotypes import GenotypeMatrix, genotypes_from_haplotypes
from repro.encoding.masks import ValidityMask

__version__ = "1.0.0"

__all__ = [
    "BlockingParams",
    "DEFAULT_BLOCKING",
    "select_blocking",
    "LDResult",
    "compute_ld",
    "banded_ld",
    "ld_cross",
    "ld_matrix",
    "ld_pairs",
    "BitMatrix",
    "GenotypeMatrix",
    "genotypes_from_haplotypes",
    "ValidityMask",
    "__version__",
]
