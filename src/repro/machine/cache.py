"""Cache-hierarchy traffic model for the blocked LD GEMM.

The GotoBLAS blocking contract (paper Section III, Figure 1) pins each packed
operand to a cache level: the B micro-panel streams from L1, the packed A
block from L2, the packed B panel from L3, and packing itself streams from
DRAM. Given the *exact* word counts of one blocked execution
(:class:`repro.core.gemm.GemmCounts`), this model charges each class of
traffic to its level and converts the totals into stall cycles.

The model is deliberately a throughput (bandwidth/latency-amortized) model,
not a timing simulator: that is the granularity at which the paper reasons
("data has to be brought into the cache before computation can proceed", the
84–90 % band, and the dips at non-multiples of the cache sizes), and it is
the same granularity BLIS's own analytical blocking model uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blocking import BlockingParams
from repro.core.gemm import GemmCounts

__all__ = ["CacheHierarchy", "CacheLevel", "MemoryTraffic"]

_WORD_BYTES = 8


@dataclass(frozen=True)
class CacheLevel:
    """One cache level's capacity and sustained word bandwidth.

    Attributes
    ----------
    name:
        Label ("L1", "L2", ...).
    size_bytes:
        Capacity.
    words_per_cycle:
        Sustained 64-bit words deliverable per cycle to the core.
    """

    name: str
    size_bytes: int
    words_per_cycle: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"{self.name}: size must be positive")
        if self.words_per_cycle <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")


@dataclass(frozen=True)
class CacheHierarchy:
    """L1/L2/L3 + DRAM bandwidth description of one core's view of memory."""

    l1: CacheLevel
    l2: CacheLevel
    l3: CacheLevel
    dram_words_per_cycle: float

    def __post_init__(self) -> None:
        if self.dram_words_per_cycle <= 0:
            raise ValueError("DRAM bandwidth must be positive")
        if not (self.l1.size_bytes <= self.l2.size_bytes <= self.l3.size_bytes):
            raise ValueError("cache sizes must be non-decreasing L1 <= L2 <= L3")


@dataclass(frozen=True)
class MemoryTraffic:
    """Words charged to each memory level for one blocked GEMM execution.

    Attributes
    ----------
    l1_words, l2_words, l3_words, dram_words:
        Word loads served by each level.
    store_words:
        Words written back (packing stores + C-tile updates).
    """

    l1_words: float
    l2_words: float
    l3_words: float
    dram_words: float
    store_words: float

    def stall_cycles(self, hierarchy: CacheHierarchy) -> float:
        """Cycles the core waits on memory, assuming level-parallel streams.

        Each level serves its share at its own bandwidth concurrently with
        compute; the charge is the *excess* beyond what the L1 stream (which
        the kernel's loads already overlap perfectly) would cost. Stores
        share DRAM bandwidth.
        """
        l2 = self.l2_words / hierarchy.l2.words_per_cycle
        l3 = self.l3_words / hierarchy.l3.words_per_cycle
        dram = (self.dram_words + self.store_words) / hierarchy.dram_words_per_cycle
        return l2 + l3 + dram


def charge_blocked_gemm(
    counts: GemmCounts,
    params: BlockingParams,
    hierarchy: CacheHierarchy,
    *,
    output_words: int = 0,
) -> MemoryTraffic:
    """Charge one blocked execution's traffic to the hierarchy levels.

    Charging rules (the GotoBLAS residency contract):

    - **B micro-panel loads** in the micro-kernel hit L1 (that is what k_c
      was chosen for) — charged to L1.
    - **A micro-panel loads** stream from the packed block in L2.
    - **C-tile updates** revisit every pc iteration and stay cache-resident
      — both directions charged to L2; only the *final* result
      (*output_words*, once per C element) is written through to DRAM.
    - **Packing reads** stream the source operands from DRAM; packing
      *writes* land in the level the packed buffer is blocked for (A block
      → L2, B panel → L3).
    - Mis-blocked configurations spill: an oversized A block pushes its
      micro-kernel loads to L3; an oversized B panel pushes half its
      micro-panel reloads to DRAM.
    """
    b_panel_fits_l3 = params.b_panel_bytes <= hierarchy.l3.size_bytes
    a_block_fits_l2 = params.a_block_bytes <= hierarchy.l2.size_bytes

    l1 = float(counts.b_load_words)
    l2 = (
        float(counts.a_load_words)
        + 2.0 * float(counts.c_update_words)  # C read + write-back per visit
        + float(counts.a_pack_words)  # packed-A writes land in L2
    )
    l3 = float(counts.b_pack_words)  # packed-B writes land in L3
    dram = float(counts.a_pack_words) + float(counts.b_pack_words)  # pack reads
    stores = float(output_words)
    if not a_block_fits_l2:
        # A micro-panels spill to L3.
        l3 += float(counts.a_load_words)
        l2 -= float(counts.a_load_words)
    if not b_panel_fits_l3:
        # B micro-panel reloads miss L1's backing panel and go to DRAM.
        dram += float(counts.b_load_words) * 0.5
    return MemoryTraffic(
        l1_words=l1, l2_words=l2, l3_words=l3, dram_words=dram, store_words=stores
    )
