"""End-to-end performance estimation for the blocked LD GEMM (Figs 3–4).

Combines the exact operation/traffic counts of one blocked execution
(:func:`repro.core.gemm.gemm_operation_counts`) with the issue-port model
(:class:`repro.machine.cpu.CoreModel`) and the cache-traffic model
(:mod:`repro.machine.cache`) to produce cycles, achieved ops/cycle, and the
percentage of the Section IV-B theoretical peak — the paper's Figure 3/4
y-axis.

The estimate is::

    cycles = compute(port model) + packing(copy loops) + stalls(hierarchy)
             + kernel-call overhead
    %peak  = (3 · haplotype-steps) / cycles / peak_ops_per_cycle

where haplotype-steps counts the AND/POPCNT/ADD triples of the *logical*
problem (padding included, as the hardware would execute it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blocking import BlockingParams, MICRO_BLOCKING
from repro.core.gemm import gemm_operation_counts
from repro.machine.cache import charge_blocked_gemm
from repro.machine.cpu import HASWELL, MachineSpec
from repro.machine.isa import SCALAR64, SimdConfig
from repro.machine.peak import ld_theoretical_peak_ops_per_cycle

__all__ = [
    "PerfEstimate",
    "PhaseEstimate",
    "estimate_gemm_performance",
    "estimate_gemm_phases",
    "measured_ops_per_cycle",
    "measured_percent_of_peak",
]


@dataclass(frozen=True)
class PerfEstimate:
    """Modelled performance of one blocked LD GEMM execution.

    Attributes
    ----------
    cycles:
        Total modelled core cycles.
    total_ops:
        AND+POPCNT+ADD operations executed (the paper's op unit).
    ops_per_cycle:
        Achieved operations per cycle.
    peak_ops_per_cycle:
        Section IV-B theoretical peak for the SIMD configuration.
    seconds:
        Wall-clock at the machine's frequency.
    """

    cycles: float
    total_ops: int
    ops_per_cycle: float
    peak_ops_per_cycle: float
    seconds: float

    @property
    def percent_of_peak(self) -> float:
        """Achieved performance as a percentage of the theoretical peak."""
        return 100.0 * self.ops_per_cycle / self.peak_ops_per_cycle


def estimate_gemm_performance(
    m: int,
    n: int,
    k_words: int,
    *,
    params: BlockingParams = MICRO_BLOCKING,
    machine: MachineSpec = HASWELL,
    simd: SimdConfig = SCALAR64,
    symmetric: bool = False,
) -> PerfEstimate:
    """Model one blocked LD GEMM of shape ``(m × k_words) · (k_words × n)``.

    Parameters
    ----------
    m, n:
        SNP counts of the two regions (``m == n`` for Figure 3's Gram case).
    k_words:
        Packed 64-bit words per SNP (samples / 64, rounded up).
    params:
        Blocking parameters; the register-realistic
        :data:`~repro.core.blocking.MICRO_BLOCKING` by default.
    machine, simd:
        Hardware description and register configuration.
    symmetric:
        Model the lower-triangle-only Gram traversal.
    """
    counts = gemm_operation_counts(m, n, k_words, params, symmetric=symmetric)
    core = machine.core
    compute = core.compute_cycles(
        counts.and_ops, counts.popcnt_ops, counts.add_ops, simd
    )
    packing = (
        counts.a_pack_words + counts.b_pack_words
    ) / core.pack_words_per_cycle
    output_words = m * n if not symmetric else m * (m + 1) // 2
    traffic = charge_blocked_gemm(
        counts, params, machine.caches, output_words=output_words
    )
    stalls = traffic.stall_cycles(machine.caches)
    overhead = core.kernel_call_overhead * counts.kernel_calls
    cycles = compute + packing + stalls + overhead
    total_ops = counts.total_ops
    peak = ld_theoretical_peak_ops_per_cycle(simd)
    return PerfEstimate(
        cycles=cycles,
        total_ops=total_ops,
        ops_per_cycle=total_ops / cycles,
        peak_ops_per_cycle=peak,
        seconds=cycles / machine.frequency_hz,
    )


@dataclass(frozen=True)
class PhaseEstimate:
    """Modelled cycles for one phase of the blocked execution.

    Attributes
    ----------
    name:
        Phase name, matching the span names the fused hot path records
        (``pack_a``, ``pack_b``, ``plane_matmul``, ``copy_out``,
        ``mirror``, ``overhead``).
    cycles, seconds:
        Modelled cost at the machine's frequency.
    kind:
        Roofline classification of what bounds the phase: ``"compute"``
        (issue ports), ``"memory"`` (bandwidth), or ``"overhead"``
        (fixed per-call costs).
    """

    name: str
    cycles: float
    seconds: float
    kind: str


def estimate_gemm_phases(
    m: int,
    n: int,
    k_words: int,
    *,
    params: BlockingParams = MICRO_BLOCKING,
    machine: MachineSpec = HASWELL,
    simd: SimdConfig = SCALAR64,
    symmetric: bool = False,
) -> tuple[PhaseEstimate, ...]:
    """Decompose :func:`estimate_gemm_performance` into per-phase cycles.

    The aggregate estimate's four terms (compute, packing, stalls,
    overhead) are reapportioned to the *phases the hot path actually
    executes* — the same names :func:`repro.core.macrokernel
    .macrokernel_fused` records as spans — by charging each traffic
    class of :func:`repro.machine.cache.charge_blocked_gemm` to the
    phase that generates it:

    - ``pack_a`` / ``pack_b``: the copy-loop cycles *plus* the DRAM
      reads of the source operand and the cache writes of the packed
      buffer (A block → L2, B panel → L3).
    - ``plane_matmul``: all compute cycles plus the micro-kernel's
      packed-A load stalls (L2, or L3 when the A block is mis-blocked)
      and the DRAM reload penalty of an oversized B panel.
    - ``copy_out``: C-tile update round-trips (L2) and the final
      write-through of the output (DRAM stores).
    - ``overhead``: the fixed per-micro-kernel call cost.
    - ``mirror`` (symmetric only): reflecting the strict lower triangle
      into the upper at copy bandwidth plus its store traffic. The
      aggregate model prices the triangular traversal only, so this
      phase is *additional* — the phase sum exceeds
      ``estimate_gemm_performance().cycles`` by exactly this term.

    Phases with zero modelled cycles are still returned, so callers can
    join measured span names against a complete schedule.
    """
    counts = gemm_operation_counts(m, n, k_words, params, symmetric=symmetric)
    core = machine.core
    caches = machine.caches
    l2_bw = caches.l2.words_per_cycle
    l3_bw = caches.l3.words_per_cycle
    dram_bw = caches.dram_words_per_cycle
    pack_rate = core.pack_words_per_cycle

    compute = core.compute_cycles(
        counts.and_ops, counts.popcnt_ops, counts.add_ops, simd
    )
    a_fits_l2 = params.a_block_bytes <= caches.l2.size_bytes
    b_fits_l3 = params.b_panel_bytes <= caches.l3.size_bytes

    pack_a = (
        counts.a_pack_words / pack_rate  # copy loop
        + counts.a_pack_words / dram_bw  # source stream from DRAM
        + counts.a_pack_words / l2_bw  # packed block lands in L2
    )
    pack_b = (
        counts.b_pack_words / pack_rate
        + counts.b_pack_words / dram_bw
        + counts.b_pack_words / l3_bw  # packed panel lands in L3
    )
    a_load_stall = counts.a_load_words / (l2_bw if a_fits_l2 else l3_bw)
    b_reload_stall = 0.0 if b_fits_l3 else 0.5 * counts.b_load_words / dram_bw
    matmul_stall = a_load_stall + b_reload_stall
    plane_matmul = compute + matmul_stall

    output_words = m * n if not symmetric else m * (m + 1) // 2
    copy_out = 2.0 * counts.c_update_words / l2_bw + output_words / dram_bw

    overhead = core.kernel_call_overhead * counts.kernel_calls

    hz = machine.frequency_hz
    phases = [
        PhaseEstimate("pack_a", pack_a, pack_a / hz, "memory"),
        PhaseEstimate("pack_b", pack_b, pack_b / hz, "memory"),
        PhaseEstimate(
            "plane_matmul", plane_matmul, plane_matmul / hz,
            "compute" if compute >= matmul_stall else "memory",
        ),
        PhaseEstimate("copy_out", copy_out, copy_out / hz, "memory"),
    ]
    if symmetric:
        mirror_words = m * (m - 1) // 2
        mirror = mirror_words / pack_rate + mirror_words / dram_bw
        phases.append(PhaseEstimate("mirror", mirror, mirror / hz, "memory"))
    phases.append(
        PhaseEstimate("overhead", overhead, overhead / hz, "overhead")
    )
    return tuple(phases)


def measured_ops_per_cycle(
    total_ops: int, seconds: float, *, machine: MachineSpec = HASWELL
) -> float:
    """Convert a measured wall-clock into effective ops/cycle.

    Expresses an observed execution in the model's currency: the cycles
    the *machine* would have spent in *seconds* at its frequency. This is
    how the paper's Figures 3–4 turn timings into %-of-peak points.
    """
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    if total_ops < 0:
        raise ValueError(f"total_ops must be non-negative, got {total_ops}")
    return total_ops / (seconds * machine.frequency_hz)


def measured_percent_of_peak(
    total_ops: int,
    seconds: float,
    *,
    machine: MachineSpec = HASWELL,
    simd: SimdConfig = SCALAR64,
) -> float:
    """Measured throughput as a percentage of the Section IV-B peak."""
    achieved = measured_ops_per_cycle(total_ops, seconds, machine=machine)
    return 100.0 * achieved / ld_theoretical_peak_ops_per_cycle(simd)
