"""Instruction-level trace generation and in-order pipeline simulation.

The throughput model (:mod:`repro.machine.perfmodel`) reasons with
aggregate counts. This module provides the microscope under it: it emits
the *actual instruction stream* of the paper's micro-kernel — the
``k_c × m_r × n_r`` sequence of LOAD/AND/POPCNT/ADD (plus EXTRACT/INSERT
in the SIMD-without-hardware-popcount regime) — and schedules it on an
in-order, multi-issue port model cycle by cycle.

Two purposes:

- **validation**: the pipeline-simulated cycle count of a micro-kernel
  converges to the throughput model's steady-state prediction (tests pin
  this), so the closed-form model used for Figures 3–5 is anchored to an
  executable semantics;
- **exposition**: per-port utilization histograms show *why* the scalar
  kernel peaks at 3 ops/cycle and why extract/insert serializes the SIMD
  variant (Section V's argument, visible instruction by instruction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.machine.cpu import CoreModel
from repro.machine.isa import SCALAR64, SimdConfig

__all__ = [
    "Op",
    "Instruction",
    "PipelineResult",
    "microkernel_trace",
    "simulate_pipeline",
]


class Op(Enum):
    """Instruction classes of the LD kernel."""

    LOAD = "load"
    AND = "and"
    POPCNT = "popcnt"
    ADD = "add"
    EXTRACT = "extract"
    INSERT = "insert"


@dataclass(frozen=True)
class Instruction:
    """One instruction of the trace.

    Attributes
    ----------
    op:
        Instruction class.
    words:
        64-bit words processed (the SIMD width in lanes for vector ops).
    """

    op: Op
    words: int = 1


def microkernel_trace(
    k_c: int, m_r: int, n_r: int, simd: SimdConfig = SCALAR64
) -> list[Instruction]:
    """Instruction stream of one micro-kernel invocation.

    Mirrors :func:`repro.core.microkernel.microkernel_scalar`: for each of
    the ``k_c`` rank-1 steps, load the ``m_r`` A-words and ``n_r`` B-words,
    then perform the ``m_r · n_r`` AND/POPCNT/ADD triples. Under a SIMD
    configuration the AND and ADD cover ``v`` words per instruction; the
    POPCNT stays scalar unless the configuration has a hardware vector
    popcount, in which case it vectorizes too; without it, each vector AND
    result must be EXTRACTed lane by lane and the counts re-INSERTed.
    """
    if min(k_c, m_r, n_r) < 1:
        raise ValueError("micro-kernel dimensions must be >= 1")
    v = simd.lanes
    trace: list[Instruction] = []
    for _step in range(k_c):
        for _a in range(m_r):
            trace.append(Instruction(Op.LOAD))
        for _b in range(n_r):
            trace.append(Instruction(Op.LOAD))
        n_cells = m_r * n_r
        n_vec = -(-n_cells // v)  # vector instructions covering the tile
        for _cell in range(n_vec):
            lanes = min(v, n_cells)
            n_cells -= lanes
            trace.append(Instruction(Op.AND, words=lanes))
            if simd.hw_popcount:
                trace.append(Instruction(Op.POPCNT, words=lanes))
            else:
                for _lane in range(lanes):
                    if simd.needs_extract_insert:
                        trace.append(Instruction(Op.EXTRACT))
                    trace.append(Instruction(Op.POPCNT))
                    if simd.needs_extract_insert:
                        trace.append(Instruction(Op.INSERT))
            trace.append(Instruction(Op.ADD, words=lanes))
    return trace


#: Which issue-port class serves each instruction class.
_PORT_OF = {
    Op.LOAD: "load",
    Op.AND: "alu",
    Op.ADD: "alu",
    Op.POPCNT: "popcnt",
    Op.EXTRACT: "shuffle",
    Op.INSERT: "shuffle",
}


@dataclass
class PipelineResult:
    """Outcome of an in-order multi-issue simulation.

    Attributes
    ----------
    cycles:
        Total cycles to retire the trace.
    issued:
        Instructions retired.
    port_busy:
        Cycles each port class spent issuing.
    """

    cycles: int
    issued: int
    port_busy: dict[str, int] = field(default_factory=dict)

    def utilization(self, port: str) -> float:
        """Busy fraction of one port class."""
        if self.cycles == 0:
            return 0.0
        return self.port_busy.get(port, 0) / self.cycles

    @property
    def words_per_cycle(self) -> float:
        """Retired POPCNT words per cycle (the kernel's pace)."""
        popcnt_words = self.port_busy.get("_popcnt_words", 0)
        return popcnt_words / self.cycles if self.cycles else 0.0


def simulate_pipeline(
    trace: list[Instruction],
    core: CoreModel | None = None,
    *,
    load_ports: int = 2,
) -> PipelineResult:
    """Schedule a trace on an in-order, multi-issue port model.

    Each cycle issues, in program order, as many instructions as port
    capacity allows: ``alu_ports`` AND/ADD, ``popcnt_ports`` POPCNT,
    ``shuffle_ports`` EXTRACT/INSERT, *load_ports* LOADs. The first
    instruction that finds its port full ends the cycle (in-order issue —
    the conservative pipeline the paper's peak argument assumes).
    """
    core = core or CoreModel()
    capacity = {
        "alu": core.alu_ports,
        "popcnt": core.popcnt_ports,
        "shuffle": core.shuffle_ports,
        "load": load_ports,
    }
    port_busy: dict[str, int] = {name: 0 for name in capacity}
    popcnt_words = 0
    cycles = 0
    index = 0
    n = len(trace)
    while index < n:
        cycles += 1
        free = dict(capacity)
        while index < n:
            inst = trace[index]
            port = _PORT_OF[inst.op]
            if free[port] == 0:
                break  # in-order stall: wait for the next cycle
            free[port] -= 1
            port_busy[port] += 1
            if inst.op is Op.POPCNT:
                popcnt_words += inst.words
            index += 1
    result = PipelineResult(cycles=cycles, issued=n, port_busy=port_busy)
    result.port_busy["_popcnt_words"] = popcnt_words
    return result
