"""Section V analysis: does wider SIMD help LD? (No — without HW popcount.)

The paper's argument, reproduced executably:

- Scalar: AND, POPCNT, ADD co-issue; the stream drains at one word/cycle
  through the POPCNT port ⇒ ``T = mn·T_POPCNT``.
- SIMD, no hardware POPCNT: AND and ADD drop to ``T/v``, but every word must
  be EXTRACTed from and INSERTed back into SIMD registers through a single
  shuffle port ⇒ the shuffle port needs **2 cycles per word** — worse than
  the scalar POPCNT port's 1 — so ``T_SIMD ≥ T_scalar`` and in this model is
  2× slower, "a decrease in performance in moving to SIMD instructions".
- SIMD with a hardware vectorized POPCNT: all three pipelines vectorize ⇒
  ``T_HW = mn·T_POPCNT / v`` — the full *v*-fold speedup, and the reason the
  paper calls for hardware support.

:func:`analyze_simd_benefit` evaluates these regimes over a set of register
widths and returns the table behind the paper's "increasing gap" claim: the
attainable fraction of the *SIMD-era theoretical peak* (3·v ops/cycle if
POPCNT were vectorized) decays as ``1/(2v)`` with register width.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.machine.cpu import CoreModel
from repro.machine.isa import PRESETS, SimdConfig

__all__ = ["SimdAnalysis", "analyze_simd_benefit"]


@dataclass(frozen=True)
class SimdAnalysis:
    """Modelled per-word cost of the LD step under one register configuration.

    Attributes
    ----------
    config:
        The register configuration analyzed.
    cycles_per_word:
        Port-limited cycles to process one packed 64-bit word.
    speedup_vs_scalar:
        Relative to the scalar 64-bit baseline (>1 is faster).
    fraction_of_vector_peak:
        Achieved ops/cycle over the hypothetical ``3·v`` vectorized peak —
        the paper's "increasing gap" metric.
    """

    config: SimdConfig
    cycles_per_word: float
    speedup_vs_scalar: float
    fraction_of_vector_peak: float


def analyze_simd_benefit(
    core: CoreModel | None = None,
    configs: Sequence[SimdConfig] = PRESETS,
    *,
    include_hw_popcount: bool = True,
) -> list[SimdAnalysis]:
    """Evaluate the Section V model over register configurations.

    Parameters
    ----------
    core:
        Issue-port model (default: the paper's x86 port structure).
    configs:
        Register configurations to analyze; each real configuration is also
        analyzed with the hypothetical hardware POPCNT when
        *include_hw_popcount* is set.

    Returns
    -------
    One :class:`SimdAnalysis` per configuration, scalar baseline first.
    """
    core = core or CoreModel()
    expanded: list[SimdConfig] = []
    for config in configs:
        expanded.append(config)
        if include_hw_popcount and config.lanes > 1:
            expanded.append(config.with_hw_popcount())
    scalar_cost = core.compute_cycles(1.0, 1.0, 1.0, expanded[0])
    results = []
    for config in expanded:
        cost = core.compute_cycles(1.0, 1.0, 1.0, config)
        vector_peak = 3.0 * config.lanes
        achieved = 3.0 / cost  # 3 ops retired per word processed
        results.append(
            SimdAnalysis(
                config=config,
                cycles_per_word=cost,
                speedup_vs_scalar=scalar_cost / cost,
                fraction_of_vector_peak=achieved / vector_peak,
            )
        )
    return results
