"""GPU projection for LD — the paper's future-work section, made executable.

The conclusion sketches GPU acceleration: "LD performance can be
significantly improved by exploiting the high memory bandwidth that
current GPUs offer, since, like matrix multiplication, LD computations are
memory-bound [at scale]. The data access pattern suggests that LD is
well-suited for current SIMT architectures. It remains to explore whether
the underlying LD arithmetics can be efficiently handled by the ALUs."

This module is the corresponding roofline model:

- **compute roof**: every SIMT lane retires one AND+POPCNT+ADD word-step
  per cycle when the ISA has a per-lane popcount (CUDA's ``__popcll`` —
  GPUs, unlike x86 SIMD, *do* have it, which resolves the paper's open
  question in the affirmative);
- **memory roof**: with GotoBLAS-style tiling in shared memory, each
  packed word of A/B is loaded from DRAM once per ``reuse``-sized tile,
  so traffic is ``8·k·(m + n)·(n_tiles)`` bytes.

The model reports which roof binds and the projected speedup over the
scalar-CPU model of :mod:`repro.machine.perfmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cpu import HASWELL, MachineSpec
from repro.machine.perfmodel import estimate_gemm_performance

__all__ = ["GpuSpec", "GpuEstimate", "TESLA_K40", "estimate_ld_gpu"]


@dataclass(frozen=True)
class GpuSpec:
    """SIMT device description for the roofline.

    Attributes
    ----------
    name:
        Device label.
    n_sms:
        Streaming multiprocessors.
    lanes_per_sm:
        Concurrent 64-bit word-op lanes per SM (integer-pipe throughput).
    frequency_hz:
        Core clock.
    mem_bandwidth_bytes:
        Sustained device-memory bandwidth (bytes/second).
    shared_tile:
        Square tile side (SNPs) held in shared memory per block; sets the
        DRAM reuse factor, the GPU analogue of the CPU cache blocking.
    """

    name: str
    n_sms: int
    lanes_per_sm: int
    frequency_hz: float
    mem_bandwidth_bytes: float
    shared_tile: int = 64

    def __post_init__(self) -> None:
        if min(self.n_sms, self.lanes_per_sm, self.shared_tile) < 1:
            raise ValueError("GPU resources must be >= 1")
        if self.frequency_hz <= 0 or self.mem_bandwidth_bytes <= 0:
            raise ValueError("GPU rates must be positive")

    @property
    def word_ops_per_second(self) -> float:
        """Peak AND+POPCNT+ADD word-steps per second across the device."""
        return self.n_sms * self.lanes_per_sm * self.frequency_hz


#: A Kepler-era card contemporary with the paper (2880 CUDA cores; the
#: 64-bit integer pipe runs at roughly 1/6 of FP32 lane count).
TESLA_K40 = GpuSpec(
    name="NVIDIA Tesla K40 (Kepler)",
    n_sms=15,
    lanes_per_sm=32,
    frequency_hz=745e6,
    mem_bandwidth_bytes=288e9,
)


@dataclass(frozen=True)
class GpuEstimate:
    """Roofline outcome for one LD GEMM shape on one GPU.

    Attributes
    ----------
    compute_seconds, memory_seconds:
        Time under each roof; the larger one binds.
    seconds:
        max(compute, memory).
    bound:
        ``"compute"`` or ``"memory"``.
    speedup_vs_cpu:
        Versus the scalar-CPU machine model at the same shape.
    """

    compute_seconds: float
    memory_seconds: float
    seconds: float
    bound: str
    speedup_vs_cpu: float


def estimate_ld_gpu(
    m: int,
    n: int,
    k_words: int,
    *,
    gpu: GpuSpec = TESLA_K40,
    cpu: MachineSpec = HASWELL,
) -> GpuEstimate:
    """Roofline-project one ``(m × k) · (k × n)`` popcount GEMM on a GPU.

    Parameters
    ----------
    m, n, k_words:
        SNP counts and packed words per SNP.
    gpu, cpu:
        Device model and the CPU baseline for the speedup figure.
    """
    if min(m, n, k_words) <= 0:
        raise ValueError("dimensions must be positive")
    word_steps = float(m) * n * k_words
    compute_seconds = word_steps / gpu.word_ops_per_second

    # Tiled traffic: each tile of C re-reads an (tile x k) strip of A and
    # B once; total loads = k * 8 bytes * (m * n/tile + n * m/tile).
    tiles_n = max(1, -(-n // gpu.shared_tile))
    tiles_m = max(1, -(-m // gpu.shared_tile))
    bytes_loaded = 8.0 * k_words * (m * tiles_n + n * tiles_m)
    bytes_stored = 8.0 * m * n
    memory_seconds = (bytes_loaded + bytes_stored) / gpu.mem_bandwidth_bytes

    seconds = max(compute_seconds, memory_seconds)
    cpu_seconds = estimate_gemm_performance(m, n, k_words, machine=cpu).seconds
    return GpuEstimate(
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        seconds=seconds,
        bound="compute" if compute_seconds >= memory_seconds else "memory",
        speedup_vs_cpu=cpu_seconds / seconds,
    )
