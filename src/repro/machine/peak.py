"""Theoretical peak for LD computation (paper Section IV-B).

The paper rejects wall-clock/LDs-per-second as a machine-independent metric
and instead defines the LD analogue of GEMM's 2·v FLOP/cycle peak:

    One LD step = one AND + one POPCNT + one ADD on a 64-bit word.
    On current x86 all three can issue in the same cycle, but POPCNT is
    scalar (v = 1), so the theoretical peak is **3 operations per cycle**.

With a hypothetical vectorized POPCNT over *v* lanes the peak becomes
``3·v`` ops/cycle — the Section V-B target the paper argues hardware should
provide.
"""

from __future__ import annotations

from repro.machine.isa import SimdConfig

__all__ = ["ld_theoretical_peak_ops_per_cycle", "gemm_theoretical_peak_flops_per_cycle"]

#: Operations per LD step (AND + POPCNT + ADD).
OPS_PER_LD_STEP = 3


def ld_theoretical_peak_ops_per_cycle(simd: SimdConfig) -> float:
    """Peak LD operations per cycle for one core under *simd*.

    Scalar and every real SIMD configuration peak at 3 ops/cycle, because
    the scalar POPCNT serializes the step stream at one word per cycle
    regardless of register width; a hardware vector POPCNT lifts the peak
    to ``3·v``.
    """
    if simd.hw_popcount:
        return float(OPS_PER_LD_STEP * simd.lanes)
    return float(OPS_PER_LD_STEP)


def gemm_theoretical_peak_flops_per_cycle(lanes: int, fma: bool = True) -> float:
    """Classic GEMM peak for context: 2·v FLOP/cycle (Section IV-B's analogy).

    With fused multiply-add issuing on two ports (modern x86), the usual
    quoted figure doubles; *fma* False gives the paper's plain 2·v form.
    """
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    base = 2.0 * lanes
    return base * 2.0 if fma else base
