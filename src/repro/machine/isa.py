"""Instruction-set abstractions for the LD kernel's machine model.

The LD inner step is three operations — AND, POPCNT, ADD — over 64-bit
words (paper Section IV-A). A :class:`SimdConfig` describes how a register
file exposes them:

- ``lanes`` (the paper's *v*): how many 64-bit words one register holds;
- ``hw_popcount``: whether a *vectorized* POPCNT exists. On every x86
  generation the paper considers it does **not** — POPCNT is scalar-only —
  so exploiting SIMD registers requires one EXTRACT per lane before the
  scalar POPCNT and one INSERT per lane after it (Section V), both of which
  contend for the single shuffle port.

The presets cover the paper's discussion: scalar 64-bit, SSE (128-bit,
v=2), AVX2 (256-bit, v=4), and AVX-512 (512-bit, v=8 — the "already being
introduced" footnote), plus hypothetical ``with_hw_popcount`` variants for
the Section V-B what-if.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["AVX2", "AVX512", "SCALAR64", "SSE", "SimdConfig", "PRESETS"]


@dataclass(frozen=True)
class SimdConfig:
    """One SIMD register configuration.

    Attributes
    ----------
    name:
        Human-readable label used in reports.
    width_bits:
        Register width in bits.
    hw_popcount:
        True if POPCNT operates on the full register (the hypothetical
        hardware of Section V-B); False for real x86, where POPCNT is a
        64-bit scalar instruction.
    """

    name: str
    width_bits: int
    hw_popcount: bool = False

    def __post_init__(self) -> None:
        if self.width_bits < 64 or self.width_bits % 64:
            raise ValueError(
                f"register width must be a positive multiple of 64 bits, "
                f"got {self.width_bits}"
            )

    @property
    def lanes(self) -> int:
        """The paper's *v*: 64-bit words per register."""
        return self.width_bits // 64

    @property
    def needs_extract_insert(self) -> bool:
        """True when POPCNT requires per-lane EXTRACT/INSERT round trips.

        Scalar code (one lane) feeds POPCNT directly from general-purpose
        registers; multi-lane registers without a hardware vector POPCNT
        must move every lane out and back (Section V).
        """
        return self.lanes > 1 and not self.hw_popcount

    def with_hw_popcount(self) -> "SimdConfig":
        """The same register file with the hypothetical vectorized POPCNT."""
        return replace(self, name=f"{self.name}+hwpopcnt", hw_popcount=True)


SCALAR64 = SimdConfig(name="scalar64", width_bits=64)
SSE = SimdConfig(name="sse", width_bits=128)
AVX2 = SimdConfig(name="avx2", width_bits=256)
AVX512 = SimdConfig(name="avx512", width_bits=512)

#: All real (no hardware vector POPCNT) presets, in increasing width.
PRESETS = (SCALAR64, SSE, AVX2, AVX512)
