"""Issue-port throughput model of one core, and whole-machine presets.

The paper's performance reasoning (Sections IV-B and V) is a port model:

- the scalar AND, POPCNT, and ADD of one LD step can all issue in the same
  cycle (hence the 3-ops/cycle theoretical peak);
- POPCNT executes on exactly **one** port, one 64-bit word per cycle —
  the structural scalar bottleneck;
- SIMD AND/ADD process *v* words per instruction, but feeding the scalar
  POPCNT from a SIMD register costs one EXTRACT per lane and one INSERT per
  lane, and "extractions and insertions cannot be performed in parallel as
  they require the same hardware resources" — a single shuffle port.

:meth:`CoreModel.compute_cycles` turns an operation-count triple into the
port-limited cycle count for a given :class:`~repro.machine.isa.SimdConfig`,
reproducing the paper's three regimes: scalar = POPCNT-bound, SIMD without
hardware POPCNT = shuffle-bound (≥2× *worse*), SIMD with hardware POPCNT =
*v*-times faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.isa import SimdConfig

__all__ = ["CoreModel", "MachineSpec", "HASWELL", "IVY_BRIDGE_2S"]


@dataclass(frozen=True)
class CoreModel:
    """Per-core issue resources.

    Attributes
    ----------
    alu_ports:
        Ports able to execute scalar/SIMD AND and ADD (logic + arithmetic).
    popcnt_ports:
        Ports able to execute the scalar 64-bit POPCNT (1 on all x86 the
        paper considers).
    shuffle_ports:
        Ports able to execute SIMD lane EXTRACT/INSERT (1 on Intel).
    pack_words_per_cycle:
        Sustained packing-copy rate (address generation + load/store issue
        of the packing loops), in words per cycle.
    kernel_call_overhead:
        Fixed cycles per micro-kernel invocation (loop setup, pointer
        arithmetic, branch).
    """

    alu_ports: int = 2
    popcnt_ports: int = 1
    shuffle_ports: int = 1
    pack_words_per_cycle: float = 2.5
    kernel_call_overhead: float = 14.0

    def __post_init__(self) -> None:
        if min(self.alu_ports, self.popcnt_ports, self.shuffle_ports) < 1:
            raise ValueError("port counts must be >= 1")
        if self.pack_words_per_cycle <= 0 or self.kernel_call_overhead < 0:
            raise ValueError("invalid packing/overhead parameters")

    def compute_cycles(
        self,
        and_ops: float,
        popcnt_ops: float,
        add_ops: float,
        simd: SimdConfig,
    ) -> float:
        """Port-limited cycles to issue the given word-operation counts.

        Operation counts are in 64-bit-word units (one LD step on one word =
        one of each). Ports drain concurrently; the busiest port bounds the
        time (a throughput model, matching Section V's ``max(...)`` form).
        """
        v = simd.lanes
        alu_cycles = (and_ops / v + add_ops / v) / self.alu_ports
        if simd.hw_popcount:
            popcnt_cycles = popcnt_ops / v / self.popcnt_ports
            shuffle_cycles = 0.0
        else:
            # POPCNT is scalar regardless of register width.
            popcnt_cycles = popcnt_ops / self.popcnt_ports
            if simd.needs_extract_insert:
                # One EXTRACT and one INSERT per 64-bit word, all through
                # the same shuffle port (Section V-A's serialization).
                shuffle_cycles = 2.0 * popcnt_ops / self.shuffle_ports
            else:
                shuffle_cycles = 0.0
        return max(alu_cycles, popcnt_cycles, shuffle_cycles)


@dataclass(frozen=True)
class MachineSpec:
    """A whole machine: core model, clock, cache hierarchy, core/SMT counts."""

    name: str
    frequency_hz: float
    core: CoreModel
    caches: CacheHierarchy
    n_cores: int
    smt_per_core: int = 2

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.n_cores < 1 or self.smt_per_core < 1:
            raise ValueError("core/SMT counts must be >= 1")


#: The Figs 3–4 testbed: Intel Haswell at 3.5 GHz (Section IV-C). Cache
#: bandwidths are sustained-streaming calibrations, not datasheet peaks.
HASWELL = MachineSpec(
    name="Intel Haswell 3.5 GHz",
    frequency_hz=3.5e9,
    core=CoreModel(),
    caches=CacheHierarchy(
        l1=CacheLevel("L1d", 32 * 1024, words_per_cycle=8.0),
        l2=CacheLevel("L2", 256 * 1024, words_per_cycle=2.5),
        l3=CacheLevel("L3", 8 * 1024 * 1024, words_per_cycle=1.2),
        dram_words_per_cycle=1.0,
    ),
    n_cores=4,
)

#: The Tables I–III / Fig 5 testbed: dual-socket Xeon E5-2620 v2
#: (Ivy Bridge, 2 × 6 cores, 2.1 GHz, 128 GB).
IVY_BRIDGE_2S = MachineSpec(
    name="2x Intel Xeon E5-2620 v2 (Ivy Bridge) 2.1 GHz",
    frequency_hz=2.1e9,
    core=CoreModel(),
    caches=CacheHierarchy(
        l1=CacheLevel("L1d", 32 * 1024, words_per_cycle=8.0),
        l2=CacheLevel("L2", 256 * 1024, words_per_cycle=2.5),
        l3=CacheLevel("L3", 15 * 1024 * 1024, words_per_cycle=1.2),
        dram_words_per_cycle=0.8,
    ),
    n_cores=12,
)
