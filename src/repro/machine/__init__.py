"""Analytical machine model (substitute for the paper's test hardware).

The paper's %-of-peak results (Figures 3–4), its theoretical-peak definition
(Section IV-B), its SIMD analysis (Section V), and its thread-scaling plot
(Figure 5) are all statements about *instruction mix, issue ports, and the
memory hierarchy* — properties this package models analytically:

- :mod:`repro.machine.isa` — operation classes and SIMD configurations
  (scalar 64-bit, SSE, AVX2, AVX-512; with and without a hardware
  vectorized POPCNT).
- :mod:`repro.machine.cpu` — an issue-port throughput model of one core
  (ALU ports, the single POPCNT port, the single shuffle port that
  serializes SIMD extract/insert).
- :mod:`repro.machine.cache` — a cache-hierarchy traffic model fed by the
  exact word counts of the blocked GEMM
  (:func:`repro.core.gemm.gemm_operation_counts`).
- :mod:`repro.machine.peak` — the paper's theoretical peak: 3 ops/cycle
  scalar (AND + POPCNT + ADD co-issued).
- :mod:`repro.machine.perfmodel` — combines the above into cycles and
  %-of-peak for a given problem shape and blocking (Figures 3–4).
- :mod:`repro.machine.simd` — the Section V T_SIMD vs T_HW analysis.
- :mod:`repro.machine.multicore` — dual-socket multicore/SMT scaling
  (Figure 5 and the thread columns of Tables I–III).

Preset machines matching the paper's two testbeds are in
:data:`repro.machine.cpu.HASWELL` (3.5 GHz, Figs 3–4) and
:data:`repro.machine.cpu.IVY_BRIDGE_2S` (2×6-core E5-2620v2, Tables I–III).
"""

from repro.machine.cache import CacheHierarchy, CacheLevel, MemoryTraffic
from repro.machine.cpu import CoreModel, HASWELL, IVY_BRIDGE_2S, MachineSpec
from repro.machine.gpu import GpuEstimate, GpuSpec, TESLA_K40, estimate_ld_gpu
from repro.machine.isa import AVX2, AVX512, SCALAR64, SSE, SimdConfig
from repro.machine.multicore import MulticoreModel, scaling_curve
from repro.machine.peak import ld_theoretical_peak_ops_per_cycle
from repro.machine.perfmodel import PerfEstimate, estimate_gemm_performance
from repro.machine.simd import SimdAnalysis, analyze_simd_benefit
from repro.machine.trace import (
    Instruction,
    Op,
    PipelineResult,
    microkernel_trace,
    simulate_pipeline,
)

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "MemoryTraffic",
    "GpuEstimate",
    "GpuSpec",
    "TESLA_K40",
    "estimate_ld_gpu",
    "CoreModel",
    "HASWELL",
    "IVY_BRIDGE_2S",
    "MachineSpec",
    "AVX2",
    "AVX512",
    "SCALAR64",
    "SSE",
    "SimdConfig",
    "MulticoreModel",
    "scaling_curve",
    "ld_theoretical_peak_ops_per_cycle",
    "PerfEstimate",
    "estimate_gemm_performance",
    "SimdAnalysis",
    "analyze_simd_benefit",
    "Instruction",
    "Op",
    "PipelineResult",
    "microkernel_trace",
    "simulate_pipeline",
]
