"""Multicore / SMT scaling model (Figure 5 and the thread columns of Tables I–III).

The paper's Figure 5 observation: the GEMM implementation's throughput peaks
at the 12 physical cores and *diminishes* beyond, "because each thread is
already achieving near peak core performance, whereas both OmegaPlus and
PLINK 1.9 performances improve further, suggesting the underutilization of
each core when a small number of threads is launched."

The model captures exactly those mechanisms:

- **Issue capacity.** A thread alone keeps a core ``utilization`` busy
  (GEMM ≈ 0.88, per Figs 3–4; the baselines much less). A core running
  ``c ≤ smt`` hardware threads delivers ``min(c, 1/utilization)`` thread-
  rates: SMT can only harvest the *unused* issue slots, so a saturated GEMM
  core gains almost nothing from a second thread while an underutilized
  PLINK core nearly doubles.
- **Shared-resource contention.** Total throughput degrades harmonically
  with aggregate demand against a bandwidth budget (``bandwidth_cap``, in
  single-thread-rate units) — the classic linear-latency memory model that
  produces the sub-linear scaling of Tables I–III below 12 threads.
- **Synchronization.** A per-extra-thread overhead fraction
  (``sync_overhead``) models barriers/work-partitioning cost, which is why
  the small Dataset A scales worse than Dataset C for every implementation.
- **Oversubscription.** Threads beyond ``n_cores × smt`` contexts add a
  scheduling penalty per excess thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.machine.cpu import MachineSpec

__all__ = ["ImplementationProfile", "MulticoreModel", "scaling_curve"]


@dataclass(frozen=True)
class ImplementationProfile:
    """Scaling-relevant characteristics of one LD implementation.

    Attributes
    ----------
    name:
        Label used in reports.
    utilization:
        Fraction of a core's issue capacity one thread keeps busy
        (0 < u <= 1). Near-peak kernels ⇒ high u ⇒ no SMT headroom.
    bandwidth_cap:
        Aggregate throughput budget in units of the single-thread rate;
        models shared cache/memory bandwidth contention.
    sync_overhead:
        Per-extra-thread fractional overhead (barriers, partitioning).
    """

    name: str
    utilization: float
    bandwidth_cap: float = float("inf")
    sync_overhead: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {self.utilization}")
        if self.bandwidth_cap <= 0:
            raise ValueError("bandwidth_cap must be positive")
        if self.sync_overhead < 0:
            raise ValueError("sync_overhead must be non-negative")


@dataclass(frozen=True)
class MulticoreModel:
    """Thread-scaling model over one machine.

    Attributes
    ----------
    machine:
        Hardware description (core count, SMT contexts per core).
    smt_yield:
        Fraction of a second hardware thread's nominal rate actually
        harvestable (pipeline sharing is imperfect).
    smt_interference:
        Per-extra-SMT-thread cache-interference loss, scaled by the
        implementation's utilization: a cache-blocked kernel tuned to own
        the whole L1/L2 (high utilization) *loses* throughput when a second
        context halves its effective cache — the mechanism behind Figure 5's
        GEMM decline past 12 threads — while a stall-bound baseline barely
        notices.
    oversubscription_penalty:
        Fractional throughput loss per software thread beyond the machine's
        hardware contexts.
    """

    machine: MachineSpec
    smt_yield: float = 0.9
    smt_interference: float = 0.22
    oversubscription_penalty: float = 0.03

    def issue_capacity(self, n_threads: int, profile: ImplementationProfile) -> float:
        """Aggregate thread-rate deliverable by the cores' issue resources."""
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        cores = self.machine.n_cores
        smt = self.machine.smt_per_core
        hw_contexts = cores * smt
        placed = min(n_threads, hw_contexts)
        base, extra = divmod(placed, cores)
        capacity = 0.0
        for core_idx in range(cores):
            c = base + (1 if core_idx < extra else 0)
            if c == 0:
                continue
            # c hardware threads want c thread-rates; the core can retire at
            # most 1/u thread-rates, and SMT threads past the first yield a
            # reduced share of their nominal demand. Extra contexts also
            # shrink each thread's effective cache, costing utilization-
            # proportional interference.
            demand = 1.0 + self.smt_yield * (c - 1)
            rate = min(demand, 1.0 / profile.utilization)
            if c > 1:
                rate *= max(
                    0.0,
                    1.0 - self.smt_interference * profile.utilization * (c - 1),
                )
            capacity += rate
        return capacity

    def speedup(self, n_threads: int, profile: ImplementationProfile) -> float:
        """Throughput at *n_threads* relative to one thread."""
        cap = self.issue_capacity(n_threads, profile)
        contention = 1.0 + cap / profile.bandwidth_cap
        sync = 1.0 + profile.sync_overhead * (n_threads - 1)
        rate = cap / (contention * sync)
        hw_contexts = self.machine.n_cores * self.machine.smt_per_core
        if n_threads > hw_contexts:
            rate /= 1.0 + self.oversubscription_penalty * (n_threads - hw_contexts)
        # Normalize so one thread is exactly 1.0.
        solo = 1.0 / (1.0 + 1.0 / profile.bandwidth_cap)
        return rate / solo

    def time_at(
        self, n_threads: int, profile: ImplementationProfile, single_thread_seconds: float
    ) -> float:
        """Wall-clock at *n_threads* given the measured single-thread time."""
        if single_thread_seconds <= 0:
            raise ValueError("single-thread time must be positive")
        return single_thread_seconds / self.speedup(n_threads, profile)


def scaling_curve(
    model: MulticoreModel,
    profile: ImplementationProfile,
    single_thread_rate: float,
    thread_counts: Sequence[int],
) -> list[float]:
    """Absolute throughput (e.g. LDs/second) across thread counts."""
    if single_thread_rate <= 0:
        raise ValueError("single-thread rate must be positive")
    return [
        single_thread_rate * model.speedup(t, profile) for t in thread_counts
    ]
