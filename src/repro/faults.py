"""Deterministic, seedable fault injection for the tiled LD engine.

At the ROADMAP's production scale an ``H = (1/N) GᵀG`` sweep is a
multi-hour sharded run, and the failure modes that matter — worker
crashes, hung processes, torn manifest appends, bit-flipped tile
payloads — are exactly the ones ad-hoc tests cannot reproduce on
demand. This module makes them reproducible: a :class:`FaultPlan` is a
seeded schedule of :class:`FaultSpec` entries that the execution layers
consult at four sites:

========================  ==================================================
site                      where the hook runs
========================  ==================================================
``tile_compute``          in the worker, before the tile GEMM
``tile_deliver``          in the worker, after compute (transport boundary)
``manifest_append``       in the driver, before journaling a tile
``pool_spawn``            in the driver, when (re)building a process pool
========================  ==================================================

Every decision is a pure function of ``(seed, spec, site, tile key,
attempt)`` — no shared counters — so the schedule is bit-reproducible
regardless of tile ordering, thread interleaving, or which process
evaluates it (worker pools receive the plan by value). The hooks follow
the :mod:`repro.observe` pattern: the engine guards every site with
``if faults is not None``, so a disabled plan costs one pointer
comparison per tile and nothing else.

Actions:

- ``raise``: raise :class:`InjectedFault` (a retryable worker error);
- ``kill``: ``SIGKILL`` the current process when it is a pool worker
  (exercising pool rebuild), downgraded to ``raise`` in-process;
- ``delay``: sleep ``delay_seconds`` (exercising the tile watchdog);
- ``bitflip``: flip one payload bit *after* the worker checksummed the
  tile (exercising corruption detection on the handoff);
- ``torn``: truncate the manifest append mid-line and raise
  :class:`InjectedCrash` (exercising torn-tail tolerance on resume).

:class:`InjectedCrash` subclasses ``BaseException`` so the engine's
retry machinery never swallows it — it behaves like the power cut it
simulates, and only a resumed run recovers.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
]

#: Hook sites the engine exposes, in tile-lifecycle order.
FAULT_SITES = (
    "tile_compute",
    "tile_deliver",
    "manifest_append",
    "pool_spawn",
    "prefetch",
)

#: Supported injection actions.
FAULT_ACTIONS = ("raise", "kill", "delay", "bitflip", "torn")

#: Which actions make sense at which site.
_SITE_ACTIONS = {
    "tile_compute": ("raise", "kill", "delay"),
    "tile_deliver": ("raise", "delay", "bitflip"),
    "manifest_append": ("raise", "delay", "torn"),
    "pool_spawn": ("raise", "delay"),
    # A disk read can fail transiently (raise → retried) or run slow
    # (delay → surfaces as prefetch stall time in the roofline report).
    "prefetch": ("raise", "delay"),
}


class InjectedFault(RuntimeError):
    """A deliberately injected, *retryable* failure."""


class InjectedCrash(BaseException):
    """A deliberately injected hard crash (power cut / ``kill -9``).

    Subclasses ``BaseException`` so per-tile retry (``except Exception``)
    never absorbs it; only crash/resume recovers, as in production.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *what* fires, *where*, and *how often*.

    Parameters
    ----------
    site:
        One of :data:`FAULT_SITES`.
    action:
        One of :data:`FAULT_ACTIONS` (validated against the site).
    rate:
        Probability the rule fires at each opportunity (deterministic
        per ``(seed, site, key, attempt)``; 1.0 = always).
    tile:
        Restrict to one tile key ``(i0, j0)``; ``None`` matches all.
    attempts_below:
        Fire only while the attempt number is below this bound. The
        knob that keeps a schedule *within the retry budget*: with
        ``attempts_below <= max_retries`` every injected failure is
        eventually retried past, so the run must still finish
        bit-identically.
    delay_seconds:
        Sleep length for ``delay`` actions.
    """

    site: str
    action: str = "raise"
    rate: float = 1.0
    tile: tuple[int, int] | None = None
    attempts_below: int | None = None
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; choose from {FAULT_SITES}"
            )
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"choose from {FAULT_ACTIONS}"
            )
        if self.action not in _SITE_ACTIONS[self.site]:
            raise ValueError(
                f"action {self.action!r} is not injectable at "
                f"{self.site!r} (allowed: {_SITE_ACTIONS[self.site]})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.attempts_below is not None and self.attempts_below < 1:
            raise ValueError(
                f"attempts_below must be >= 1, got {self.attempts_below}"
            )
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be non-negative, got {self.delay_seconds}"
            )
        if self.tile is not None:
            object.__setattr__(self, "tile", (int(self.tile[0]), int(self.tile[1])))

    def to_dict(self) -> dict:
        """JSON-serializable form (defaults included for explicitness)."""
        return {
            "site": self.site,
            "action": self.action,
            "rate": self.rate,
            "tile": list(self.tile) if self.tile is not None else None,
            "attempts_below": self.attempts_below,
            "delay_seconds": self.delay_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        known = {
            "site", "action", "rate", "tile", "attempts_below", "delay_seconds",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown FaultSpec fields {sorted(unknown)}; "
                f"allowed: {sorted(known)}"
            )
        if "site" not in payload:
            raise ValueError("FaultSpec requires a 'site' field")
        kwargs = dict(payload)
        tile = kwargs.get("tile")
        if tile is not None:
            kwargs["tile"] = (int(tile[0]), int(tile[1]))
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, order-independent schedule of injected faults.

    The plan is immutable and picklable — the process engine ships it to
    workers by value — and every decision re-derives from the seed, so
    two processes evaluating the same opportunity always agree.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    # -- deterministic decision machinery ---------------------------------

    def _unit(self, spec_idx: int, site: str, key: tuple[int, int],
              attempt: int, salt: str = "") -> float:
        """Uniform value in [0, 1) derived purely from the identity.

        blake2b, not crc32: CRC is linear over GF(2), so nearby seeds
        would produce correlated (often identical) threshold decisions.
        """
        token = f"{self.seed}|{spec_idx}|{site}|{key[0]},{key[1]}|{attempt}|{salt}"
        digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "little") / 2**64

    def _fires(self, spec_idx: int, spec: FaultSpec, site: str,
               key: tuple[int, int], attempt: int) -> bool:
        if spec.site != site:
            return False
        if spec.tile is not None and spec.tile != (key[0], key[1]):
            return False
        if spec.attempts_below is not None and attempt >= spec.attempts_below:
            return False
        if spec.rate >= 1.0:
            return True
        if spec.rate <= 0.0:
            return False
        return self._unit(spec_idx, site, key, attempt) < spec.rate

    # -- hook entry points ------------------------------------------------

    def fire(self, site: str, key: tuple[int, int], attempt: int,
             *, can_kill: bool = False) -> None:
        """Evaluate raise/kill/delay rules for one opportunity.

        May sleep (``delay``), raise :class:`InjectedFault` (``raise``,
        or ``kill`` outside a sacrificeable process), or ``SIGKILL`` the
        calling process (``kill`` with ``can_kill=True`` — the process
        engine's workers). ``bitflip``/``torn`` rules are inert here;
        they have dedicated entry points.
        """
        for idx, spec in enumerate(self.specs):
            if spec.action in ("bitflip", "torn"):
                continue
            if not self._fires(idx, spec, site, key, attempt):
                continue
            if spec.action == "delay":
                time.sleep(spec.delay_seconds)
                continue
            if spec.action == "kill" and can_kill:
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(
                f"injected {spec.action} at {site} tile={key} attempt={attempt}"
            )

    def corrupt(self, site: str, key: tuple[int, int], attempt: int,
                block: np.ndarray) -> bool:
        """Apply any matching ``bitflip`` rule to *block* in place.

        Call *after* the payload checksum is taken, so the flip models
        corruption on the handoff. Returns True if a bit was flipped.
        """
        for idx, spec in enumerate(self.specs):
            if spec.action != "bitflip":
                continue
            if not self._fires(idx, spec, site, key, attempt):
                continue
            flat = block.reshape(-1).view(np.uint8)
            if flat.size == 0:  # pragma: no cover - empty tiles never scheduled
                return False
            pos = int(self._unit(idx, site, key, attempt, "pos") * flat.size)
            bit = int(self._unit(idx, site, key, attempt, "bit") * 8)
            flat[pos] ^= np.uint8(1 << bit)
            return True
        return False

    def should_tear(self, key: tuple[int, int], attempt: int = 0) -> bool:
        """True when a ``torn`` rule fires for this manifest append.

        The manifest writer responds by truncating the record mid-line
        and raising :class:`InjectedCrash` — the simulated power cut.
        """
        return any(
            spec.action == "torn"
            and self._fires(idx, spec, "manifest_append", key, attempt)
            for idx, spec in enumerate(self.specs)
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError(
                f"fault plan must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"seed", "specs"}
        if unknown:
            raise ValueError(
                f"unknown fault-plan fields {sorted(unknown)}; "
                "allowed: ['seed', 'specs']"
            )
        specs = payload.get("specs", [])
        if not isinstance(specs, list):
            raise ValueError("fault-plan 'specs' must be a list")
        return cls(
            seed=int(payload.get("seed", 0)),
            specs=tuple(FaultSpec.from_dict(s) for s in specs),
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--fault-plan``)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable fault plan {path}: {exc}") from exc
        try:
            return cls.from_dict(payload)
        except (ValueError, TypeError, KeyError, IndexError) as exc:
            raise ValueError(f"invalid fault plan {path}: {exc}") from exc
