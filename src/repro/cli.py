"""Command-line interface: ``python -m repro <command> ...``.

Wraps the library the way the tools it reproduces are driven — file in,
file out:

===========  ================================================================
command      what it does
===========  ================================================================
simulate     generate a haplotype panel (SFS / coalescent / sweep) → ms/VCF
pack         pack a panel into a disk-backed store for out-of-core ``ld``
ld           all-pairs or banded LD matrix from ms/VCF/FASTA → .npy/.tsv
scan         ω-statistic selective-sweep scan → .tsv
prune        PLINK-style LD pruning → kept SNP indices
blocks       haplotype-block partition → .tsv
decay        LD-decay curve → .tsv
model        machine-model report (%-of-peak, SIMD analysis, GPU roofline)
tune         time the blocking candidate grid, persist the per-machine winner
profile      run an LD workload with span profiling on → repro-profile/1 JSON
report       render any metrics/trace/profile/bench artifact as text
===========  ================================================================

Every command takes ``--seed`` where randomness is involved and prints a
one-line summary to stdout; data goes to the ``--out`` path.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis.decay import ld_decay_curve
from repro.analysis.haplotype_blocks import find_haplotype_blocks
from repro.analysis.ldprune import ld_prune
from repro.analysis.sweeps import sweep_scan
from repro.core.banding import BandSpec, dense_pair_cells
from repro.core.blocking import DEFAULT_BLOCKING
from repro.core.engine import ENGINES, enumerate_tiles, run_engine
from repro.core.gemm import DEFAULT_KERNEL, GEMM_KERNELS
from repro.faults import FaultPlan
from repro.core.ldmatrix import as_bitmatrix, ld_matrix
from repro.core.streaming import BandedNpySink, NpyMemmapSink
from repro.observe import (
    JsonlTraceSink,
    MetricsRecorder,
    ProgressReporter,
    SpanProfiler,
    compare_to_model,
)
from repro.core.windowed import banded_ld
from repro.encoding.bitmatrix import BitMatrix
from repro.io.fasta import call_snps_from_alignment, read_fasta
from repro.io.msformat import read_ms, write_ms
from repro.io.vcf import read_vcf, write_vcf
from repro.machine.gpu import TESLA_K40, estimate_ld_gpu
from repro.machine.perfmodel import estimate_gemm_performance
from repro.machine.simd import analyze_simd_benefit
from repro.simulate.coalescent import simulate_chunked_region
from repro.simulate.datasets import simulate_sfs_panel
from repro.simulate.wrightfisher import simulate_sweep

__all__ = ["main"]


def load_panel(path: str | Path) -> tuple[BitMatrix, np.ndarray]:
    """Load a haplotype panel from .ms, .vcf, or .fasta by extension."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".ms":
        replicate = read_ms(path)[0]
        return (
            BitMatrix.from_dense(replicate.haplotypes),
            replicate.positions.astype(np.float64),
        )
    if suffix == ".vcf" or path.name.lower().endswith(".vcf.gz"):
        panel = read_vcf(path)
        return panel.to_bitmatrix(), panel.positions.astype(np.float64)
    if suffix in (".fa", ".fasta"):
        chars, _names = read_fasta(path)
        calls = call_snps_from_alignment(chars)
        return calls.matrix, calls.positions
    raise SystemExit(
        f"unsupported input format {suffix!r}; use .ms, .vcf, or .fasta"
    )


def _parse_size(text: str) -> int:
    """Parse a byte size like ``4096``, ``64M``, ``2G`` (binary suffixes)."""
    s = text.strip().upper()
    for tail in ("IB", "B"):
        if s.endswith(tail) and len(s) > len(tail):
            s = s[: -len(tail)]
            break
    scale = 1
    if s and s[-1] in "KMGT":
        scale = 1024 ** ("KMGT".index(s[-1]) + 1)
        s = s[:-1]
    try:
        value = float(s)
    except ValueError:
        raise SystemExit(
            f"invalid size {text!r}; use e.g. 4096, 64M, 2G"
        ) from None
    if value <= 0:
        raise SystemExit(f"size must be positive, got {text!r}")
    return int(value * scale)


def _save_matrix(matrix: np.ndarray, out: Path) -> None:
    if out.suffix == ".npy":
        np.save(out, matrix)
    elif out.suffix == ".tsv":
        np.savetxt(out, matrix, delimiter="\t", fmt="%.6g")
    else:
        raise SystemExit(f"unsupported output format {out.suffix!r}; use .npy/.tsv")


def _cmd_simulate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    positions: np.ndarray
    if args.kind == "sfs":
        panel = simulate_sfs_panel(args.samples, args.snps, rng=rng)
        haps = panel.to_dense()
        positions = np.arange(args.snps, dtype=np.float64)
    elif args.kind == "coalescent":
        sample = simulate_chunked_region(
            args.samples, n_chunks=args.chunks, theta_per_chunk=args.theta,
            rng=rng, chunk_length=1000.0,
        )
        haps, positions = sample.haplotypes, sample.positions
    else:  # sweep
        result = simulate_sweep(
            args.samples, args.snps | 1, pop_size=max(2 * args.samples, 100),
            selection=1.0, mut_rate=1e-3, recomb_rate=8e-3, rng=rng,
        )
        haps, positions = result.haplotypes, result.positions
    out = Path(args.out)
    if out.suffix == ".ms":
        span = positions.max() if positions.size and positions.max() > 0 else 1.0
        write_ms(out, [(haps, positions / span)])
    elif out.suffix == ".vcf":
        ploidy = 2 if haps.shape[0] % 2 == 0 else 1
        write_vcf(out, haps, np.arange(haps.shape[1]) * 100 + 1, ploidy=ploidy)
    else:
        raise SystemExit(f"unsupported output format {out.suffix!r}; use .ms/.vcf")
    print(f"simulate: wrote {haps.shape[0]} haplotypes x {haps.shape[1]} SNPs "
          f"({args.kind}) to {out}")
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    """Pack a panel into a disk-backed store for out-of-core ``ld``."""
    from repro.io.panelstore import PanelStore

    panel, _positions = load_panel(args.input)
    out = Path(args.out)
    with PanelStore.create(out, panel) as store:
        print(
            f"pack: {store.n_snps} SNPs x {store.n_samples} samples "
            f"({store.nbytes / 1e6:.1f} MB packed words, "
            f"{store.row_nbytes} B/row) -> {out} "
            f"digest={store.content_digest[:16]}"
        )
    return 0


def _resolve_band(
    args: argparse.Namespace, positions: np.ndarray | None
) -> BandSpec | None:
    """The ``--window``/``--window-kb`` band of an engine run, or ``None``."""
    window = getattr(args, "window", 0)
    window_kb = getattr(args, "window_kb", None)
    if window and window_kb is not None:
        raise SystemExit(
            "pass --window (SNP count) or --window-kb (genomic distance), "
            "not both"
        )
    if window < 0:
        raise SystemExit(f"--window must be >= 1 SNP, got {window}")
    if window:
        return BandSpec(window=window)
    if window_kb is not None:
        if window_kb <= 0:
            raise SystemExit(
                f"--window-kb must be positive, got {window_kb}"
            )
        if positions is None:
            raise SystemExit(
                "--window-kb resolves the band against panel positions, "
                "which a packed store does not carry; use --window "
                "(SNP count) with --panel"
            )
        return BandSpec(
            max_distance=window_kb * 1000.0, positions=positions
        )
    return None


def _cmd_ld_engine(
    args: argparse.Namespace,
    panel: BitMatrix,
    params=None,
    *,
    data=None,
    memory_budget: int | None = None,
    positions: np.ndarray | None = None,
) -> int:
    """Sharded tiled execution path of the ``ld`` command (``--engine``)."""
    if data is None:
        data = panel
    out = Path(args.out)
    if out.suffix != ".npy":
        raise SystemExit("--engine requires a .npy output (disk-backed matrix)")
    if args.stat not in ("r2", "D", "H"):
        raise SystemExit(f"--engine supports --stat r2/D/H, not {args.stat!r}")
    band = _resolve_band(args, positions)
    if args.threads != 1:
        raise SystemExit(
            "--engine schedules its own worker pool; use --workers, not "
            "--threads"
        )
    manifest = Path(args.manifest) if args.manifest else Path(f"{out}.manifest")
    mode = "r+" if args.resume and out.exists() else "w+"
    max_retries = 2 if args.max_retries is None else args.max_retries
    faults: FaultPlan | None = None
    if args.fault_plan:
        try:
            faults = FaultPlan.from_json(args.fault_plan)
        except FileNotFoundError:
            raise SystemExit(f"--fault-plan file not found: {args.fault_plan}")
        except ValueError as exc:
            raise SystemExit(str(exc))

    live_path = args.live or os.environ.get("REPRO_LIVE") or None
    recorder: MetricsRecorder | None = None
    if args.metrics_out or args.trace_out or args.profile_out or live_path:
        trace = JsonlTraceSink(args.trace_out) if args.trace_out else None
        # The profile's worker timeline is reconstructed from retained
        # tile_computed events, so --profile-out implies keep_events.
        # --live rides on a recorder too: the snapshot pulls prefetch
        # and phase state from it at publish time.
        recorder = MetricsRecorder(
            trace=trace, keep_events=bool(args.profile_out)
        )
    live = None
    if live_path:
        from repro.observe.live import LivePublisher

        live = LivePublisher(
            Path(live_path),
            config={
                "engine": args.engine,
                "workers": args.workers,
                "stat": args.stat,
                "n_snps": panel.n_snps,
                "n_samples": panel.n_samples,
                "k_words": panel.n_words,
                "block_snps": args.block_snps,
                "band": band.describe() if band is not None else None,
                "memory_budget": args.memory_budget,
            },
            recorder=recorder,
        )
    profiler: SpanProfiler | None = None
    if args.profile_out:
        profiler = SpanProfiler()
    progress: ProgressReporter | None = None
    if args.progress:
        # Banded totals: the ETA must count the pairs the run actually
        # delivers, not the dense triangle.
        tiles = enumerate_tiles(panel.n_snps, args.block_snps, band=band)
        if band is not None:
            pairs_total = sum(band.pairs_in(t) for t in tiles)
        else:
            pairs_total = sum(t.n_pairs for t in tiles)
        progress = ProgressReporter(len(tiles), pairs_total, label="ld")

    band_width = band.index_width(panel.n_snps) if band is not None else 0
    start = time.perf_counter()
    try:
        if band is not None:
            sink_cm = BandedNpySink(out, panel.n_snps, band_width, mode=mode)
        else:
            sink_cm = NpyMemmapSink(out, panel.n_snps, mode=mode)
        with sink_cm as sink:
            report = run_engine(
                data, sink,
                stat=args.stat,
                block_snps=args.block_snps,
                engine=args.engine,
                n_workers=args.workers,
                memory_budget=memory_budget,
                batch_tiles=args.batch_tiles,
                params=params,
                band=band,
                resume=args.resume,
                manifest_path=manifest,
                max_retries=max_retries,
                tile_timeout=args.tile_timeout,
                allow_quarantine=args.allow_quarantine,
                faults=faults,
                recorder=recorder,
                progress=progress,
                profiler=profiler,
                live=live,
            )
    finally:
        if progress is not None:
            progress.close()
        if recorder is not None:
            recorder.close()
    wall = time.perf_counter() - start

    _append_run_record(
        args, panel, report, recorder, wall,
        band=band, live=live, live_path=live_path, out=out,
        manifest=manifest,
    )
    if args.metrics_out:
        _write_engine_metrics(
            args, panel, report, recorder, wall,
            band=band, band_width=band_width,
        )
    if args.profile_out:
        _write_engine_profile(
            args, panel, report, recorder, profiler, wall, params
        )
    if band is not None:
        shape = f"banded ({panel.n_snps}, {band_width + 1}) " \
                f"[{band.describe()}, {report.n_pruned} tiles pruned]"
    else:
        shape = f"matrix ({panel.n_snps}, {panel.n_snps})"
    print(f"ld: engine={report.engine} workers={report.n_workers} "
          f"computed {report.n_computed}/{report.n_tiles} tiles "
          f"(skipped {report.n_skipped} journaled, {report.n_retries} retries) "
          f"{args.stat} {shape} -> {out}")
    if report.degraded:
        print(f"ld: WARNING executor degraded {report.engine} -> "
              f"{report.engine_used} (worker pool could not be kept alive)",
              file=sys.stderr)
    if report.n_quarantined > 0:
        tiles = ", ".join(str(t) for t in report.quarantined)
        print(f"ld: WARNING {report.n_quarantined} tile(s) quarantined after "
              f"{max_retries} retries: {tiles}; the matrix has holes — "
              f"journaled in {manifest} and retried on the next --resume run",
              file=sys.stderr)
        return 3
    return 0


def _append_run_record(
    args: argparse.Namespace,
    panel: BitMatrix,
    report,
    recorder: MetricsRecorder | None,
    wall_seconds: float,
    *,
    band: BandSpec | None,
    live,
    live_path: str | None,
    out: Path,
    manifest: Path,
) -> None:
    """Append this run's ``repro-run/1`` summary to the cross-run ledger.

    Best-effort by design: a read-only cache directory must not fail the
    run that just computed a matrix — the warning goes to stderr and the
    matrix still lands.
    """
    import socket

    from repro.observe.live import new_run_id
    from repro.observe.registry import (
        RUN_SCHEMA, append_run, shape_fingerprint,
    )

    if recorder is not None:
        pairs_computed = recorder.counters.get("engine.pairs_computed", 0)
    else:
        # No recorder: estimate delivered pairs from the tile counts (the
        # exact counter only exists on instrumented runs).
        total = (
            report.band_pairs if band is not None
            else dense_pair_cells(panel.n_snps, args.block_snps)
        )
        pairs_computed = (
            round(total * report.n_computed / report.n_tiles)
            if report.n_tiles else 0
        )
    percent_of_peak = None
    if (band is None and report.n_computed == report.n_tiles
            and wall_seconds > 0):
        percent_of_peak = compare_to_model(
            panel.n_snps, panel.n_snps, panel.n_words, wall_seconds,
            params=DEFAULT_BLOCKING, symmetric=True,
        ).measured_percent_of_peak
    band_desc = band.describe() if band is not None else None
    record = {
        "schema": RUN_SCHEMA,
        "run_id": live.run_id if live is not None else new_run_id(),
        "timestamp_unix": time.time(),
        "host": socket.gethostname(),
        "fingerprint": shape_fingerprint(
            stat=args.stat, n_snps=panel.n_snps, n_samples=panel.n_samples,
            block_snps=args.block_snps, band=band_desc,
        ),
        "config": {
            "engine": report.engine_used or report.engine,
            "workers": report.n_workers,
            "stat": args.stat,
            "n_snps": panel.n_snps,
            "n_samples": panel.n_samples,
            "block_snps": args.block_snps,
            "band": band_desc,
            "memory_budget": args.memory_budget,
        },
        "wall_seconds": wall_seconds,
        "pairs_computed": pairs_computed,
        "pairs_per_second": (
            pairs_computed / wall_seconds if wall_seconds > 0 else 0.0
        ),
        "percent_of_peak": percent_of_peak,
        "tiles": {
            "total": report.n_tiles,
            "computed": report.n_computed,
            "skipped": report.n_skipped,
            "pruned": report.n_pruned,
            "quarantined": report.n_quarantined,
            "retries": report.n_retries,
        },
        "anomalies": sorted(
            {a["kind"] for a in live.last_anomalies}
        ) if live is not None else [],
        "artifacts": {
            "out": str(out),
            "manifest": str(manifest),
            "metrics": args.metrics_out,
            "trace": args.trace_out,
            "profile": args.profile_out,
            "live": live_path,
        },
    }
    try:
        append_run(record)
    except OSError as exc:
        print(f"ld: WARNING could not append to the run registry: {exc}",
              file=sys.stderr)


def _write_engine_metrics(
    args: argparse.Namespace,
    panel: BitMatrix,
    report,
    recorder: MetricsRecorder,
    wall_seconds: float,
    *,
    band: BandSpec | None = None,
    band_width: int = 0,
) -> None:
    """Serialize one engine run's metrics + measured-vs-modeled %-of-peak."""
    pairs_computed = recorder.counters.get("engine.pairs_computed", 0)
    # Score the run against the analytical Haswell model for the same
    # logical problem (symmetric lower-triangle Gram over the full panel)
    # and the blocking the tiles actually executed. The comparison is the
    # paper's %-of-peak framing; on a resumed run most tiles were skipped,
    # so the wall-clock measures only the remainder and the model row is
    # omitted rather than reported as a nonsense throughput. Banded runs
    # skip the model too: it prices the dense triangle.
    model = None
    if (band is None and report.n_computed == report.n_tiles
            and wall_seconds > 0):
        model = compare_to_model(
            panel.n_snps, panel.n_snps, panel.n_words, wall_seconds,
            params=DEFAULT_BLOCKING, symmetric=True,
        ).as_dict()
    payload = {
        "schema": "repro-ld-metrics/1",
        "engine": report.engine,
        "workers": report.n_workers,
        "stat": args.stat,
        "n_snps": panel.n_snps,
        "n_samples": panel.n_samples,
        "k_words": panel.n_words,
        "block_snps": args.block_snps,
        "n_tiles": report.n_tiles,
        "n_computed": report.n_computed,
        "n_skipped": report.n_skipped,
        "n_retries": report.n_retries,
        "n_quarantined": report.n_quarantined,
        "quarantined": [list(t) for t in report.quarantined],
        "n_batches": report.n_batches,
        "engine_used": report.engine_used or report.engine,
        "wall_seconds": wall_seconds,
        "pairs_computed": pairs_computed,
        "pairs_per_second": pairs_computed / wall_seconds if wall_seconds > 0
        else 0.0,
    }
    if band is not None:
        pairs_dense = dense_pair_cells(panel.n_snps, args.block_snps)
        payload["band"] = {
            "window": band.window,
            "window_kb": getattr(args, "window_kb", None),
            "max_distance": band.max_distance,
            "index_width": band_width,
            "tiles_dense": report.n_tiles + report.n_pruned,
            "tiles_pruned": report.n_pruned,
            "tiles_partial": report.n_partial,
            "tiles_full": report.n_tiles - report.n_partial,
            "pairs_in_band": report.band_pairs,
            "pairs_dense": pairs_dense,
            "predicted_speedup": (
                pairs_dense / report.band_pairs if report.band_pairs else None
            ),
        }
    if model is not None:
        payload["model"] = model
    recorder.write_json(args.metrics_out, extra=payload)


def _workload_dict(args: argparse.Namespace, panel: BitMatrix) -> dict:
    """The problem description a ``repro-profile/1`` payload carries."""
    workload = {
        "stat": args.stat,
        "n_snps": panel.n_snps,
        "n_samples": panel.n_samples,
        "k_words": panel.n_words,
        "block_snps": args.block_snps,
    }
    window = getattr(args, "window", 0)
    window_kb = getattr(args, "window_kb", None)
    if window or window_kb is not None:
        workload["band"] = {"window": window or None, "window_kb": window_kb}
    return workload


def _write_engine_profile(
    args: argparse.Namespace,
    panel: BitMatrix,
    report,
    recorder: MetricsRecorder,
    profiler: SpanProfiler,
    wall_seconds: float,
    params,
) -> None:
    """Serialize the run's phase attribution as ``repro-profile/1``."""
    from repro.observe.report import build_profile_payload

    payload = build_profile_payload(
        recorder=recorder,
        profiler=profiler,
        report=report,
        wall_seconds=wall_seconds,
        workload=_workload_dict(args, panel),
        params=params if params is not None else DEFAULT_BLOCKING,
    )
    Path(args.profile_out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def _cmd_ld(args: argparse.Namespace) -> int:
    if args.panel is not None and args.input is not None:
        raise SystemExit("pass either an input panel file or --panel, not both")
    if args.panel is None and args.input is None:
        raise SystemExit("an input panel file (or --panel STORE) is required")
    memory_budget = (
        _parse_size(args.memory_budget)
        if args.memory_budget is not None else None
    )
    if memory_budget is not None and args.panel is None:
        raise SystemExit(
            "--memory-budget bounds resident rows of a packed store; it "
            "requires --panel (see `repro pack`)"
        )
    store = None
    if args.panel is not None:
        if not args.engine:
            raise SystemExit(
                "--panel streams a packed store through the tiled engine; "
                "add --engine serial|threads|processes|persistent"
            )
        if args.maf > 0.0 or args.drop_monomorphic:
            raise SystemExit(
                "--maf/--drop-monomorphic rewrite the panel; filter the "
                "input before `repro pack` instead"
            )
        from repro.io.panelstore import PanelStore

        try:
            store = PanelStore.open(args.panel)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot open panel store {args.panel}: {exc}")
        panel = store.to_bitmatrix()
        positions = None
    else:
        panel, positions = load_panel(args.input)
        # Filters run as explicit index selections so *positions* stays
        # aligned with the surviving SNPs (--window-kb resolves the band
        # against them).
        if args.drop_monomorphic:
            idx = np.flatnonzero(panel.is_polymorphic())
            panel = panel.select(idx)
            positions = positions[idx]
        if args.maf > 0.0:
            freqs = panel.allele_frequencies()
            idx = np.flatnonzero(np.minimum(freqs, 1.0 - freqs) >= args.maf)
            panel = panel.select(idx)
            positions = positions[idx]
    params = None
    if args.autotune:
        # First run pays the timed search and persists the winner; every
        # later run reloads the identical parameters from the profile.
        from repro.core.tuning import profile_path, tuned_blocking

        params = tuned_blocking(DEFAULT_KERNEL)
        print(f"ld: autotuned blocking mc={params.mc} nc={params.nc} "
              f"kc={params.kc} (profile: {profile_path()})", file=sys.stderr)
    if args.engine:
        try:
            return _cmd_ld_engine(
                args, panel, params=params,
                data=store if store is not None else panel,
                memory_budget=memory_budget,
                positions=positions,
            )
        finally:
            if store is not None:
                store.close()
    if args.window_kb is not None:
        raise SystemExit(
            "--window-kb resolves a genomic band through the tiled engine; "
            "add --engine serial|threads|processes|persistent "
            "(or use --window for an in-memory SNP-index band)"
        )
    if (args.progress or args.metrics_out or args.trace_out
            or args.profile_out or args.live):
        raise SystemExit(
            "--progress/--metrics-out/--trace-out/--profile-out/--live "
            "instrument the tiled engine; add --engine "
            "serial|threads|processes"
        )
    if (args.fault_plan or args.tile_timeout is not None
            or args.max_retries is not None or args.allow_quarantine
            or args.batch_tiles is not None):
        raise SystemExit(
            "--fault-plan/--tile-timeout/--max-retries/--allow-quarantine/"
            "--batch-tiles configure the tiled engine; add --engine "
            "serial|threads|processes"
        )
    if args.window:
        band = banded_ld(panel, window=args.window, stat=args.stat,
                         params=params)
        matrix = band.values
        kind = f"banded (window {args.window}, diagonal-major)"
    else:
        matrix = ld_matrix(panel, stat=args.stat, n_threads=args.threads,
                           params=params)
        kind = "full"
    out = Path(args.out)
    _save_matrix(matrix, out)
    print(f"ld: {kind} {args.stat} matrix {matrix.shape} over "
          f"{panel.n_snps} SNPs x {panel.n_samples} samples -> {out}")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    panel, positions = load_panel(args.input)
    scan = sweep_scan(
        panel, positions, grid_size=args.grid_size, max_window=args.max_window,
    )
    out = Path(args.out)
    table = np.column_stack([scan.grid, scan.omegas, scan.best_splits])
    np.savetxt(
        out, table, delimiter="\t", fmt="%.6g",
        header="position\tomega\tbest_split", comments="",
    )
    print(f"scan: peak omega {scan.peak_omega:.3f} at position "
          f"{scan.peak_position:.1f} ({args.grid_size} grid points) -> {out}")
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    panel, _positions = load_panel(args.input)
    kept = ld_prune(
        panel, window=args.window, step=args.step,
        r2_threshold=args.r2_threshold,
    )
    out = Path(args.out)
    np.savetxt(out, kept, fmt="%d")
    print(f"prune: kept {kept.size} of {panel.n_snps} SNPs "
          f"(r2 < {args.r2_threshold}) -> {out}")
    return 0


def _cmd_blocks(args: argparse.Namespace) -> int:
    panel, _positions = load_panel(args.input)
    blocks = find_haplotype_blocks(
        panel, window=args.window, r2_threshold=args.r2_threshold,
        min_fraction=args.min_fraction,
    )
    out = Path(args.out)
    rows = [(b.start, b.stop, b.n_snps, b.mean_r2) for b in blocks]
    np.savetxt(
        out, np.array(rows, dtype=float).reshape(-1, 4), delimiter="\t",
        fmt="%.6g", header="start\tstop\tn_snps\tmean_r2", comments="",
    )
    covered = sum(b.n_snps for b in blocks)
    print(f"blocks: {len(blocks)} blocks covering {covered} of "
          f"{panel.n_snps} SNPs -> {out}")
    return 0


def _cmd_decay(args: argparse.Namespace) -> int:
    panel, positions = load_panel(args.input)
    curve = ld_decay_curve(panel, positions, n_bins=args.bins)
    out = Path(args.out)
    table = np.column_stack([curve.bin_centers, curve.mean_r2, curve.counts])
    np.savetxt(
        out, table, delimiter="\t", fmt="%.6g",
        header="distance\tmean_r2\tn_pairs", comments="",
    )
    print(f"decay: {args.bins} bins, half-decay distance "
          f"{curve.half_decay_distance():.4g} -> {out}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.core.tuning import (
        DEFAULT_TUNE_SHAPE,
        autotune,
        machine_fingerprint,
        profile_path,
        save_profile,
    )

    shape = tuple(args.shape) if args.shape else DEFAULT_TUNE_SHAPE
    result = autotune(
        args.kernel, shape=shape, repeats=args.repeats,
        budget_seconds=args.budget_seconds,
    )
    print(f"tune: kernel={args.kernel} shape={shape} "
          f"fingerprint={machine_fingerprint()}")
    for timing in result.candidates:
        p = timing.params
        marker = " <- best" if p == result.params else ""
        print(f"  mc={p.mc:<5d} nc={p.nc:<5d} kc={p.kc:<4d} "
              f"mr={p.mr:<3d} nr={p.nr:<3d} "
              f"{timing.seconds:8.4f} s  "
              f"{timing.words_per_second / 1e9:7.2f} Gword/s{marker}")
    if args.dry_run:
        print("tune: dry run, profile not written")
    else:
        target = save_profile(result)
        print(f"tune: best blocking persisted to {target} "
              f"(reloaded automatically by ld --autotune)")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    k_words = (args.samples + 63) // 64
    est = estimate_gemm_performance(args.snps, args.snps, k_words)
    print(f"model: {args.snps} SNPs x {args.samples} samples "
          f"({k_words} words/SNP) on the Haswell model")
    print(f"  scalar kernel: {est.percent_of_peak:.1f} % of the 3-ops/cycle "
          f"peak, {est.seconds:.3f} s projected")
    print("  SIMD analysis (Section V):")
    for analysis in analyze_simd_benefit():
        print(f"    {analysis.config.name:>18}: "
              f"{analysis.speedup_vs_scalar:5.2f}x vs scalar")
    gpu = estimate_ld_gpu(args.snps, args.snps, k_words)
    print(f"  GPU roofline ({TESLA_K40.name}): {gpu.bound}-bound, "
          f"{gpu.seconds:.4f} s, {gpu.speedup_vs_cpu:.1f}x vs scalar CPU")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run an LD workload with span profiling on; emit ``repro-profile/1``."""
    import tempfile

    from repro.observe.report import build_profile_payload

    if args.input:
        panel, _positions = load_panel(args.input)
        source = str(args.input)
    else:
        rng = np.random.default_rng(args.seed)
        panel = as_bitmatrix(
            simulate_sfs_panel(args.samples, args.snps, rng=rng)
        )
        source = f"sfs(snps={args.snps}, samples={args.samples}, " \
                 f"seed={args.seed})"
    recorder = MetricsRecorder(keep_events=True)
    profiler = SpanProfiler()
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as tmp:
        matrix_out = (
            Path(args.matrix_out) if args.matrix_out
            else Path(tmp) / "ld.npy"
        )
        start = time.perf_counter()
        with NpyMemmapSink(matrix_out, panel.n_snps) as sink:
            report = run_engine(
                panel, sink,
                stat=args.stat,
                block_snps=args.block_snps,
                engine=args.engine,
                n_workers=args.workers,
                manifest_path=Path(tmp) / "ld.npy.manifest",
                recorder=recorder,
                progress=None,
                profiler=profiler,
            )
        wall = time.perf_counter() - start
    workload = _workload_dict(args, panel)
    workload["source"] = source
    payload = build_profile_payload(
        recorder=recorder,
        profiler=profiler,
        report=report,
        wall_seconds=wall,
        workload=workload,
    )
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    coverage = payload["tiles"]["phase_coverage"]
    print(f"profile: engine={report.engine} workers={report.n_workers} "
          f"{panel.n_snps} SNPs in {wall:.3f} s; {len(payload['phases'])} "
          f"phases, span coverage "
          f"{'--' if coverage is None else format(coverage, '.1%')}, "
          f"{len(payload['anomalies'])} anomalies -> {out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render metrics/trace/profile/bench artifacts as text."""
    from repro.observe.report import UnknownSchemaError, render_file

    status = 0
    for path in args.files:
        try:
            text = render_file(path)
        except UnknownSchemaError as exc:
            # Version skew between writer and reader gets its own,
            # scriptable exit code.
            print(f"report: {exc}", file=sys.stderr)
            return 2
        except (OSError, ValueError) as exc:
            print(f"report: {exc}", file=sys.stderr)
            status = 1
            continue
        try:
            if len(args.files) > 1:
                print(f"==> {path} <==")
            print(text)
            if len(args.files) > 1:
                print()
        except BrokenPipeError:
            # Downstream pager/head closed the pipe; that is not an error.
            # Reopen stdout on devnull so interpreter shutdown does not
            # raise while flushing.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return status
    return status


def _resolve_live_path(args: argparse.Namespace) -> Path:
    """Snapshot path from the positional argument or ``REPRO_LIVE``."""
    path = args.snapshot or os.environ.get("REPRO_LIVE")
    if not path:
        raise SystemExit(
            "no snapshot path: pass one or set REPRO_LIVE (the engine run "
            "must be started with `ld --engine ... --live PATH`)"
        )
    return Path(path)


def _cmd_top(args: argparse.Namespace) -> int:
    """Render the live dashboard from a ``repro-live/1`` snapshot."""
    from repro.observe.live import read_snapshot, render_top

    path = _resolve_live_path(args)
    if not args.watch:
        snapshot = read_snapshot(path)
        if snapshot is None:
            print(f"top: no snapshot at {path} (run not started, or started "
                  "without --live)", file=sys.stderr)
            return 1
        print(render_top(snapshot))
        return 0
    try:
        while True:
            snapshot = read_snapshot(path)
            # ANSI clear + home, like watch(1); harmless on a pipe.
            sys.stdout.write("\x1b[2J\x1b[H")
            if snapshot is None:
                print(f"top: waiting for a snapshot at {path} ...")
            else:
                print(render_top(snapshot))
            sys.stdout.flush()
            if snapshot is not None and snapshot.get("phase") == "done":
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Expose a live snapshot in Prometheus text format."""
    from repro.observe.live import (
        prometheus_text, read_snapshot, serve_prometheus,
    )

    if not args.prometheus:
        raise SystemExit(
            "repro export needs an output format; pass --prometheus"
        )
    path = _resolve_live_path(args)
    if args.serve is not None:
        server = serve_prometheus(path, args.serve, host=args.host)
        host, port = server.server_address[:2]
        print(f"export: serving {path} at http://{host}:{port}/metrics "
              "(Ctrl-C to stop)", file=sys.stderr)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0
    snapshot = read_snapshot(path)
    if snapshot is None:
        print(f"export: no snapshot at {path}", file=sys.stderr)
        return 1
    sys.stdout.write(prometheus_text(snapshot))
    return 0


def _cmd_runs_list(args: argparse.Namespace) -> int:
    """List the cross-run registry ledger."""
    from repro.observe.registry import load_runs, render_runs_list

    try:
        records, n_torn = load_runs(args.registry)
    except ValueError as exc:
        raise SystemExit(f"runs: {exc}")
    print(render_runs_list(records, n_torn=n_torn))
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    """Show one registry record in full."""
    from repro.observe.registry import find_run, load_runs, render_run

    try:
        records, _n_torn = load_runs(args.registry)
        record = find_run(records, args.run)
    except ValueError as exc:
        raise SystemExit(f"runs: {exc}")
    print(render_run(record))
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    """Diff two registry records; exit 1 on a flagged regression."""
    from repro.observe.registry import (
        diff_runs, find_run, load_runs, render_diff,
    )

    try:
        records, _n_torn = load_runs(args.registry)
        baseline = find_run(records, args.baseline)
        candidate = find_run(records, args.candidate)
        diff = diff_runs(baseline, candidate, threshold=args.threshold)
    except ValueError as exc:
        raise SystemExit(f"runs: {exc}")
    print(render_diff(diff))
    return 1 if diff["flagged"] else 0


def _cmd_pool_list(args: argparse.Namespace) -> int:
    """List persistent warm-worker pools journaled to the state file."""
    from repro.core.executors import pool_status

    pools = pool_status()
    if not pools:
        print("pool: no persistent pools")
        return 0
    print(f"{'KEY':<16} {'OWNER':>7} {'ALIVE':>5} {'WORKERS':>7} "
          f"{'AGE':>8}  SELF")
    now_wall = time.time()
    now_mono = time.monotonic()
    for entry in pools:
        # Age from the monotonic birth stamp: CLOCK_MONOTONIC is
        # system-wide on Linux, so the subtraction is valid across
        # processes and immune to wall-clock jumps (NTP, DST). Records
        # journaled before the monotonic stamp existed fall back to the
        # wall-clock birth time.
        if entry.get("created_monotonic") is not None:
            age = max(0.0, now_mono - float(entry["created_monotonic"]))
        else:
            age = max(0.0, now_wall - float(entry.get("created", now_wall)))
        print(
            f"{entry['key'][:16]:<16} {entry['owner_pid']:>7} "
            f"{'yes' if entry['owner_alive'] else 'no':>5} "
            f"{entry['workers_alive']}/{entry['n_workers']:>3}   "
            f"{age:>7.1f}s  {'*' if entry['own'] else ''}"
        )
    return 0


def _cmd_pool_stop(args: argparse.Namespace) -> int:
    """Stop warm pools: kill workers and unlink their shared memory."""
    from repro.core.executors import pool_status, stop_pools

    key = args.key
    if key is not None:
        matches = sorted(
            {e["key"] for e in pool_status() if e["key"].startswith(key)}
        )
        if not matches:
            print(f"pool: no pool matches key {key!r}", file=sys.stderr)
            return 1
        if len(matches) > 1:
            print(f"pool: key {key!r} is ambiguous "
                  f"({', '.join(m[:16] for m in matches)})", file=sys.stderr)
            return 1
        key = matches[0]
    stopped = stop_pools(key, cross_process=True)
    print(f"pool: stopped {stopped} pool(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GEMM-based linkage disequilibrium toolkit (IPPS'16 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="generate a haplotype panel")
    p.add_argument("--kind", choices=("sfs", "coalescent", "sweep"), default="sfs")
    p.add_argument("--samples", type=int, default=100)
    p.add_argument("--snps", type=int, default=500,
                   help="SNP count (sfs) or site count (sweep)")
    p.add_argument("--theta", type=float, default=10.0,
                   help="per-chunk theta (coalescent)")
    p.add_argument("--chunks", type=int, default=5,
                   help="independent loci (coalescent)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help=".ms or .vcf output")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "pack",
        help="pack a panel into a disk-backed store for out-of-core ld",
    )
    p.add_argument("input", help=".ms/.vcf/.fasta panel")
    p.add_argument("--out", required=True,
                   help="packed panel store output path (e.g. panel.pnl)")
    p.set_defaults(func=_cmd_pack)

    p = sub.add_parser("ld", help="compute an LD matrix")
    p.add_argument("input", nargs="?", default=None,
                   help=".ms/.vcf/.fasta panel (or use --panel)")
    p.add_argument("--panel", default=None, metavar="STORE",
                   help="packed panel store from `repro pack`; streamed "
                        "from disk instead of loaded into RAM "
                        "(requires --engine)")
    p.add_argument("--memory-budget", default=None, metavar="SIZE",
                   help="driver-RAM budget for resident panel rows, e.g. "
                        "64M or 2G; panels larger than this are streamed "
                        "window by window with double-buffered prefetch "
                        "(requires --panel)")
    p.add_argument("--stat", choices=("r2", "D", "Dprime", "H"), default="r2")
    p.add_argument("--window", type=int, default=0,
                   help="banded mode: max pair distance in SNPs (0 = full)")
    p.add_argument("--window-kb", type=float, default=None, metavar="KB",
                   help="banded mode: max pair distance in kilobases, "
                        "resolved against the panel's positions "
                        "(requires --engine; tiles outside the band are "
                        "pruned, never computed)")
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--maf", type=float, default=0.0,
                   help="drop SNPs below this minor-allele frequency")
    p.add_argument("--drop-monomorphic", action="store_true")
    p.add_argument("--out", required=True, help=".npy or .tsv output")
    p.add_argument("--engine", "--executor", dest="engine",
                   choices=ENGINES, default=None,
                   help="sharded tiled execution with checkpoint journal "
                        "(out-of-core .npy path; default: in-memory). "
                        "'persistent' keeps a warm worker pool alive "
                        "across runs (see `repro pool`)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for --engine threads/processes/"
                        "persistent")
    p.add_argument("--block-snps", type=int, default=512,
                   help="tile side in SNPs for --engine")
    p.add_argument("--manifest", default=None,
                   help="tile journal path (default: <out>.manifest)")
    p.add_argument("--resume", action="store_true",
                   help="skip tiles already journaled in the manifest")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="recompute a failing tile up to N times before "
                        "quarantining or aborting (--engine only; default 2)")
    p.add_argument("--tile-timeout", type=float, default=None, metavar="SECONDS",
                   help="per-tile wall-clock budget; hung workers are killed "
                        "and their tiles retried (--engine only)")
    p.add_argument("--allow-quarantine", action="store_true",
                   help="journal poison tiles and finish with exit code 3 "
                        "instead of aborting (--engine only)")
    p.add_argument("--fault-plan", default=None, metavar="JSON",
                   help="inject deterministic faults from this plan file "
                        "(--engine only; testing/rehearsal)")
    p.add_argument("--progress", action="store_true",
                   help="live tiles/s, pairs/s and ETA line on stderr "
                        "(--engine only)")
    p.add_argument("--metrics-out", default=None, metavar="JSON",
                   help="write run metrics + measured-vs-modeled %%-of-peak "
                        "JSON here (--engine only)")
    p.add_argument("--trace-out", default=None, metavar="JSONL",
                   help="write the per-tile JSONL event trace here "
                        "(--engine only)")
    p.add_argument("--profile-out", default=None, metavar="JSON",
                   help="write the repro-profile/1 phase-attribution payload "
                        "here, enabling span profiling for the run "
                        "(--engine only)")
    p.add_argument("--live", default=None, metavar="JSON",
                   help="publish a repro-live/1 status snapshot here on a "
                        "throttled cadence for `repro top`/`repro export` "
                        "(--engine only; also honoured via $REPRO_LIVE)")
    p.add_argument("--batch-tiles", type=int, default=None, metavar="N",
                   help="tiles dispatched per worker submission "
                        "(--engine threads/processes; default: auto)")
    p.add_argument("--autotune", action="store_true",
                   help="use the persisted per-machine tuned blocking, "
                        "running the timed search first if absent "
                        "(see `repro tune`)")
    p.set_defaults(func=_cmd_ld)

    p = sub.add_parser("scan", help="omega-statistic sweep scan")
    p.add_argument("input")
    p.add_argument("--grid-size", type=int, default=25)
    p.add_argument("--max-window", type=int, default=100)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_scan)

    p = sub.add_parser("prune", help="LD pruning (PLINK --indep-pairwise)")
    p.add_argument("input")
    p.add_argument("--window", type=int, default=50)
    p.add_argument("--step", type=int, default=5)
    p.add_argument("--r2-threshold", type=float, default=0.2)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_prune)

    p = sub.add_parser("blocks", help="haplotype-block partition")
    p.add_argument("input")
    p.add_argument("--window", type=int, default=50)
    p.add_argument("--r2-threshold", type=float, default=0.5)
    p.add_argument("--min-fraction", type=float, default=0.7)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_blocks)

    p = sub.add_parser("decay", help="LD-decay curve")
    p.add_argument("input")
    p.add_argument("--bins", type=int, default=20)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_decay)

    p = sub.add_parser(
        "profile",
        help="run an LD workload with span profiling on -> repro-profile/1",
    )
    p.add_argument("--input", default=None,
                   help=".ms/.vcf/.fasta panel "
                        "(default: simulate an SFS panel)")
    p.add_argument("--snps", type=int, default=1024,
                   help="SNP count of the simulated panel (no --input)")
    p.add_argument("--samples", type=int, default=256,
                   help="haplotype count of the simulated panel (no --input)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--stat", choices=("r2", "D", "H"), default="r2")
    p.add_argument("--engine", choices=ENGINES, default="threads",
                   help="executor to profile (default: threads, which "
                        "exercises the dispatch/wait driver phases)")
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--block-snps", type=int, default=256)
    p.add_argument("--matrix-out", default=None, metavar="NPY",
                   help="keep the computed matrix here "
                        "(default: scratch, discarded)")
    p.add_argument("--out", required=True,
                   help="repro-profile/1 JSON output path")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "report",
        help="render metrics/trace/profile/bench artifacts as text",
    )
    p.add_argument("files", nargs="+",
                   help="JSON or JSONL artifact path(s): repro-profile/1, "
                        "repro-ld-metrics/1, repro-trace/1, "
                        "repro-bench-gemm/1, repro-bench-engine/1, or a "
                        "bench history JSONL")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("model", help="machine-model performance report")
    p.add_argument("--snps", type=int, default=4096)
    p.add_argument("--samples", type=int, default=10000)
    p.set_defaults(func=_cmd_model)

    p = sub.add_parser(
        "tune",
        help="time the blocking candidate grid and persist the winner",
    )
    p.add_argument("--kernel", choices=GEMM_KERNELS, default=DEFAULT_KERNEL)
    p.add_argument("--shape", type=int, nargs=3, default=None,
                   metavar=("M", "N", "K"),
                   help="timing shape in SNPs x SNPs x words "
                        "(default: 1024 1024 32)")
    p.add_argument("--repeats", type=int, default=2,
                   help="timings per candidate; best is kept")
    p.add_argument("--budget-seconds", type=float, default=None,
                   help="stop the search after this many seconds "
                        "(already-timed candidates still compete)")
    p.add_argument("--dry-run", action="store_true",
                   help="print the timing table without writing the profile")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "top",
        help="live dashboard over a repro-live/1 snapshot file",
    )
    p.add_argument("snapshot", nargs="?", default=None,
                   help="snapshot path (default: $REPRO_LIVE)")
    p.add_argument("--watch", action="store_true",
                   help="refresh until the run reports done (Ctrl-C stops)")
    p.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                   help="refresh cadence for --watch (default: 1.0)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "export",
        help="export a live snapshot as Prometheus text format",
    )
    p.add_argument("snapshot", nargs="?", default=None,
                   help="snapshot path (default: $REPRO_LIVE)")
    p.add_argument("--prometheus", action="store_true",
                   help="text exposition format 0.0.4 (required; the only "
                        "format so far)")
    p.add_argument("--serve", type=int, default=None, metavar="PORT",
                   help="serve /metrics over HTTP instead of printing once "
                        "(re-reads the snapshot per scrape; port 0 picks a "
                        "free one)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for --serve (default: 127.0.0.1)")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "runs",
        help="cross-run registry: list, show, and diff recorded engine runs",
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    rp = runs_sub.add_parser("list", help="table of recorded runs")
    rp.add_argument("--registry", default=None, metavar="JSONL",
                    help="ledger path (default: $REPRO_RUNS_PATH or "
                         "~/.cache/repro/runs.jsonl)")
    rp.set_defaults(func=_cmd_runs_list)
    rp = runs_sub.add_parser("show", help="one recorded run in full")
    rp.add_argument("run", help="run index from `runs list` (negative from "
                                "the end) or a run-id prefix")
    rp.add_argument("--registry", default=None, metavar="JSONL")
    rp.set_defaults(func=_cmd_runs_show)
    rp = runs_sub.add_parser(
        "diff",
        help="compare two runs; exit 1 when a throughput regression is "
             "flagged",
    )
    rp.add_argument("baseline", help="baseline run (index or run-id prefix)")
    rp.add_argument("candidate", help="candidate run (index or run-id prefix)")
    rp.add_argument("--threshold", type=float, default=0.30, metavar="FRAC",
                    help="flag when candidate pairs/s drops by at least this "
                         "fraction vs baseline (default: 0.30)")
    rp.add_argument("--registry", default=None, metavar="JSONL")
    rp.set_defaults(func=_cmd_runs_diff)

    p = sub.add_parser(
        "pool",
        help="inspect or stop persistent warm-worker pools",
    )
    pool_sub = p.add_subparsers(dest="pool_command", required=True)
    pp = pool_sub.add_parser(
        "list", help="list journaled pools (this process and others)"
    )
    pp.set_defaults(func=_cmd_pool_list)
    pp = pool_sub.add_parser(
        "stop",
        help="stop warm pools: kill workers, unlink shared-memory segments",
    )
    pp.add_argument("--key", default=None, metavar="FINGERPRINT",
                    help="stop only the pool with this panel fingerprint "
                         "(prefixes accepted; default: all pools)")
    pp.set_defaults(func=_cmd_pool_stop)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    return int(args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())
