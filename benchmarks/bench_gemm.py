"""Kernel-level benchmark: the fused macro-kernel vs the micro drivers.

Times ``repro.core.gemm.popcount_gemm`` for the legacy per-micro-tile
``numpy`` driver against the fused bit-plane macro-kernel (``fused``) on
three rectangular shapes — including the paper-scale Gram block
``m = n = 4096, k = 64`` words — and scores each run against the
analytical Haswell model (%-of-peak framing, Figs. 3–4). Throughput is
reported in word-MACs/s (``m·n·k`` packed-word AND+POPCNT
accumulations per GEMM). Results go to ``BENCH_gemm.json``; the checked
-in copy of that file is the regression baseline for CI's perf-smoke
job. Runnable three ways:

as a script::

    python benchmarks/bench_gemm.py             # full shapes
    python benchmarks/bench_gemm.py --quick     # CI smoke subset

as a regression gate (CI perf-smoke)::

    python benchmarks/bench_gemm.py --quick --check benchmarks/BENCH_gemm.json

under the pytest benchmark harness::

    pytest benchmarks/bench_gemm.py --benchmark-only -s

The ``--check`` gate compares fused throughput on every shape present in
both the fresh run and the baseline file, and fails (exit 1) when any
drops below ``--min-ratio`` (default 0.7, i.e. a >30 % regression).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.gemm import popcount_gemm, resolve_blocking  # noqa: E402
from repro.core.macrokernel import GemmWorkspace  # noqa: E402
from repro.observe import compare_to_model  # noqa: E402

#: (m, n, k_words) per benchmarked shape. The first is the paper-scale
#: Gram block the ISSUE's 2x acceptance bar is measured on.
FULL_SHAPES = [(4096, 4096, 64), (2048, 2048, 32), (1024, 1024, 16)]
#: --quick must stay a subset of FULL_SHAPES so a full-run baseline file
#: always has matching rows for the CI gate. The mid-size shape is the
#: smallest whose timing is stable enough for a 30 % regression floor.
QUICK_SHAPES = [(2048, 2048, 32)]

#: Old hot path first, new hot path second; --check gates on the latter.
KERNELS = ("numpy", "fused")


def time_kernel(
    a: np.ndarray,
    b: np.ndarray,
    kernel: str,
    *,
    repeats: int,
    workspace: GemmWorkspace,
) -> tuple[float, np.ndarray]:
    """Best-of-*repeats* seconds for one popcount GEMM (plus its result)."""
    best = float("inf")
    c = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        c = popcount_gemm(a, b, kernel=kernel, workspace=workspace)
        best = min(best, time.perf_counter() - start)
    return best, c


def bench_gemm_shapes(
    shapes: list[tuple[int, int, int]], *, repeats: int
) -> list[dict]:
    """Time every (shape, kernel) pair and print the comparison table."""
    rng = np.random.default_rng(20160516)
    workspace = GemmWorkspace()
    rows: list[dict] = []
    print(f"{'shape (m,n,k)':>18} | {'kernel':>7} | {'seconds':>8} | "
          f"{'Gword/s':>8} | {'%peak':>6} | {'vs numpy':>8}")
    for m, n, k in shapes:
        a = rng.integers(0, 2**63, size=(m, k), dtype=np.int64).astype(np.uint64)
        b = rng.integers(0, 2**63, size=(n, k), dtype=np.int64).astype(np.uint64)
        words = m * n * k
        baseline_s = None
        reference = None
        for kernel in KERNELS:
            seconds, c = time_kernel(
                a, b, kernel, repeats=repeats, workspace=workspace
            )
            if reference is None:
                reference = c
            else:
                # The bench doubles as a differential check: both hot
                # paths must produce bit-identical popcount Grams.
                np.testing.assert_array_equal(c, reference)
            comparison = compare_to_model(
                m, n, k, seconds, params=resolve_blocking(None, kernel)
            )
            if baseline_s is None:
                baseline_s = seconds
            rows.append({
                "m": m,
                "n": n,
                "k_words": k,
                "kernel": kernel,
                "seconds": seconds,
                "words": words,
                "words_per_second": words / seconds,
                "measured_percent_of_peak":
                    comparison.measured_percent_of_peak,
                "modeled_percent_of_peak": comparison.modeled_percent_of_peak,
                "speedup_vs_numpy": baseline_s / seconds,
            })
            print(f"{f'{m}x{n}x{k}':>18} | {kernel:>7} | {seconds:>8.3f} | "
                  f"{words / seconds / 1e9:>8.2f} | "
                  f"{comparison.measured_percent_of_peak:>6.2f} | "
                  f"{baseline_s / seconds:>7.2f}x")
    return rows


def write_report(rows: list[dict], path: str | Path) -> None:
    """Serialize the result rows as ``BENCH_gemm.json``."""
    payload = {
        "schema": "repro-bench-gemm/1",
        "model": "HASWELL analytical (repro.machine), per-kernel default "
                 "blocking, scalar64 peak",
        "kernels": list(KERNELS),
        "results": rows,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    print(f"wrote {len(rows)} result rows -> {path}")


def check_against_baseline(
    rows: list[dict], baseline_path: str | Path, *, min_ratio: float
) -> int:
    """Gate fused throughput against a committed baseline file.

    Every (m, n, k) shape present in both runs is compared; a fresh
    fused throughput below ``min_ratio`` of the baseline's fails the
    gate. Returns a process exit code.
    """
    try:
        payload = json.loads(Path(baseline_path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"check: cannot read baseline {baseline_path}: {error}")
        return 1
    baseline = {
        (r["m"], r["n"], r["k_words"]): r["words_per_second"]
        for r in payload.get("results", [])
        if r.get("kernel") == "fused"
    }
    compared = 0
    failed = 0
    for row in rows:
        if row["kernel"] != "fused":
            continue
        shape = (row["m"], row["n"], row["k_words"])
        if shape not in baseline:
            continue
        compared += 1
        ratio = row["words_per_second"] / baseline[shape]
        verdict = "ok" if ratio >= min_ratio else "REGRESSION"
        print(f"check: fused {shape}: {ratio:.2f}x baseline "
              f"(floor {min_ratio:.2f}) {verdict}")
        if ratio < min_ratio:
            failed += 1
    if compared == 0:
        print("check: no overlapping fused shapes between run and baseline")
        return 1
    if failed:
        print(f"check: FAILED - {failed}/{compared} shape(s) regressed "
              f"more than {(1 - min_ratio) * 100:.0f}%")
        return 1
    print(f"check: passed on {compared} shape(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke subset of FULL_SHAPES (CI; seconds)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timings per (shape, kernel); best is kept")
    parser.add_argument("--json", default="BENCH_gemm.json", metavar="PATH",
                        help="result file (default: %(default)s)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare fused throughput against this "
                             "committed BENCH_gemm.json; exit 1 on "
                             "regression past --min-ratio")
    parser.add_argument("--min-ratio", type=float, default=0.7,
                        help="minimum fused throughput as a fraction of "
                             "the baseline (default: %(default)s)")
    args = parser.parse_args(argv)
    shapes = QUICK_SHAPES if args.quick else FULL_SHAPES
    rows = bench_gemm_shapes(shapes, repeats=args.repeats)
    write_report(rows, args.json)
    if args.check:
        return check_against_baseline(
            rows, args.check, min_ratio=args.min_ratio
        )
    return 0


def test_bench_gemm_fused(benchmark):
    """pytest-benchmark entry: fused kernel on the quick shape."""
    rng = np.random.default_rng(20160516)
    m, n, k = QUICK_SHAPES[0]
    a = rng.integers(0, 2**63, size=(m, k), dtype=np.int64).astype(np.uint64)
    b = rng.integers(0, 2**63, size=(n, k), dtype=np.int64).astype(np.uint64)
    workspace = GemmWorkspace()
    popcount_gemm(a, b, kernel="fused", workspace=workspace)  # warm carve

    def run():
        return popcount_gemm(a, b, kernel="fused", workspace=workspace)

    c = benchmark.pedantic(run, rounds=3, iterations=1)
    assert c.shape == (m, n)


if __name__ == "__main__":
    raise SystemExit(main())
