"""Table III: PLINK 1.9 vs OmegaPlus vs GEMM on Dataset C (100,000 samples).

Paper: simulated panel, 10,000 SNPs x 100,000 sequences — the largest
comparison, with the largest GEMM advantage (10.3-17.1x over PLINK,
4.0-4.7x over OmegaPlus). Here: the 1/50-scale stand-in (2,000 samples x
300 SNPs, 32 packed words per SNP).
"""

from benchmarks.tablecommon import run_table_comparison

#: Execution-time rows of the paper's Table III (seconds).
PAPER_TABLE_3 = {
    "PLINK": {1: 465.99, 2: 364.96, 4: 210.64, 8: 120.81, 12: 88.37},
    "OmegaPlus": {1: 222.54, 2: 114.50, 4: 60.31, 8: 31.08, 12: 20.95},
    "GEMM": {1: 48.09, 2: 25.07, 4: 13.54, 8: 7.37, 12: 5.21},
}


def test_table3_dataset_c(benchmark, dataset_c_bench):
    measured = run_table_comparison(
        benchmark,
        dataset_c_bench,
        "Table III - Dataset C (100,000-sample shape)",
        PAPER_TABLE_3,
    )
    # The paper's largest dataset shows its largest speedups.
    assert measured["PLINK"] / measured["GEMM"] > 10.0
    assert measured["OmegaPlus"] / measured["GEMM"] > 4.0
