"""Section V analysis: SIMD benefit for LD, with and without HW popcount.

Paper claims reproduced as assertions:

1. No real SIMD width (SSE/AVX2/AVX-512, scalar POPCNT + extract/insert)
   beats the scalar kernel — the model shows a 2x *slowdown*.
2. A hypothetical vectorized POPCNT restores the full v-fold speedup.
3. The attainable fraction of the would-be vector peak decays with register
   width — the paper's "increasing gap ... suggesting the need for
   hardware support".

A companion wall-clock measurement shows the same structure on this
container: numpy's bitwise_count (the "hardware popcount" path) versus the
software popcounts (LUT/SWAR — the extract/insert-era workarounds).
"""

import numpy as np

from repro.machine.simd import analyze_simd_benefit
from repro.util.popcount import POPCOUNT_IMPLEMENTATIONS
from repro.util.timing import Timer


def test_simd_analysis_table(benchmark):
    results = benchmark(analyze_simd_benefit)
    print("\n=== Section V - SIMD benefit model ===")
    print(f"{'config':>18} | {'cyc/word':>8} | {'speedup':>8} | {'% of 3v peak':>12}")
    for analysis in results:
        print(
            f"{analysis.config.name:>18} | {analysis.cycles_per_word:>8.3f} | "
            f"{analysis.speedup_vs_scalar:>8.2f} | "
            f"{100 * analysis.fraction_of_vector_peak:>11.1f}%"
        )
    by_name = {a.config.name: a for a in results}

    # Claim 1: no real SIMD config beats scalar.
    for name in ("sse", "avx2", "avx512"):
        assert by_name[name].speedup_vs_scalar <= 1.0
    # Claim 2: HW popcount restores v-fold speedups.
    assert by_name["avx512+hwpopcnt"].speedup_vs_scalar == 8.0
    # Claim 3: the gap to the vector peak widens with width.
    assert (
        by_name["sse"].fraction_of_vector_peak
        > by_name["avx2"].fraction_of_vector_peak
        > by_name["avx512"].fraction_of_vector_peak
    )


def test_popcount_implementation_shootout(benchmark):
    """Wall-clock analogue: HW popcount vs software popcounts (ref [17])."""
    rng = np.random.default_rng(3)
    words = rng.integers(0, 2**63, size=1 << 20).astype(np.uint64)

    benchmark(lambda: POPCOUNT_IMPLEMENTATIONS["hardware"](words))
    hardware = float(benchmark.stats.stats.min)

    timings = {"hardware": hardware}
    for name in ("lut8", "lut16", "swar"):
        timer = Timer()
        for _ in range(3):
            with timer:
                POPCOUNT_IMPLEMENTATIONS[name](words)
        timings[name] = timer.best

    print("\n=== Popcount implementations, 1 Mi words ===")
    for name, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
        print(f"{name:>9}: {seconds * 1e3:8.2f} ms "
              f"({words.size / seconds / 1e9:.2f} G words/s)")
    # The paper's choice: the hardware instruction beats software popcounts.
    assert timings["hardware"] < timings["lut8"]
    assert timings["hardware"] < timings["lut16"]
    assert timings["hardware"] < timings["swar"]
