"""Extension bench: PLINK's genotype r² recast as six popcount GEMMs.

The paper leaves the genotype domain to PLINK ("the focus of PLINK 1.9 is
on genotypes"). `repro.core.genotype_ld` shows the same GEMM treatment
applies there too; this bench quantifies it: identical output to the
per-pair PLINK-style kernel, at GEMM speed.
"""

import numpy as np

from benchmarks.conftest import make_dataset, make_genotypes
from repro.baselines.plink import plink_r2_matrix
from repro.core.genotype_ld import genotype_r2_matrix
from repro.util.timing import Timer


def test_genotype_gemm_vs_plink_kernel(benchmark, dataset_b_bench=None):
    panel = make_dataset("B")
    genotypes = make_genotypes(panel)

    gemm_r2 = benchmark(lambda: genotype_r2_matrix(genotypes, undefined=0.0))
    gemm_seconds = float(benchmark.stats.stats.min)

    timer = Timer()
    with timer:
        plink_r2 = plink_r2_matrix(genotypes, undefined=0.0)

    np.testing.assert_allclose(gemm_r2, plink_r2, atol=1e-9)
    speedup = timer.elapsed / gemm_seconds
    print("\n=== Genotype-domain r2: 6 GEMMs vs per-pair kernel ===")
    print(f"variants: {genotypes.n_variants}, individuals: "
          f"{genotypes.n_individuals}")
    print(f"per-pair PLINK-style: {timer.elapsed * 1e3:9.1f} ms")
    print(f"six popcount GEMMs:   {gemm_seconds * 1e3:9.1f} ms "
          f"({speedup:.0f}x, identical output)")
    assert speedup > 20.0
