"""Table I: PLINK 1.9 vs OmegaPlus vs GEMM on Dataset A (2,504 samples).

Paper: 10,000 SNPs from the genomes of 2,504 humans (1000 Genomes chr 1).
Here: the SFS-simulated stand-in at 1/50 scale (50 samples x 300 SNPs); the
paper's published rows are printed beside the measured/modelled rows.

Shape criteria reproduced: GEMM fastest at every thread count, OmegaPlus
second, PLINK slowest; paper speedups 7.4-8.9x over PLINK and 3.7-6.7x over
OmegaPlus at 10k SNPs.
"""

from benchmarks.tablecommon import run_table_comparison

#: Execution-time rows of the paper's Table I (seconds).
PAPER_TABLE_1 = {
    "PLINK": {1: 14.18, 2: 12.02, 4: 8.21, 8: 5.88, 12: 5.29},
    "OmegaPlus": {1: 7.04, 2: 6.72, 4: 6.02, 8: 4.56, 12: 4.21},
    "GEMM": {1: 1.89, 2: 1.36, 4: 1.11, 8: 0.73, 12: 0.62},
}


def test_table1_dataset_a(benchmark, dataset_a_bench):
    measured = run_table_comparison(
        benchmark,
        dataset_a_bench,
        "Table I - Dataset A (2,504-sample shape)",
        PAPER_TABLE_1,
    )
    # Paper's single-thread GEMM-vs-PLINK factor is 7.5x; pure-Python
    # baselines exaggerate the gap, so require at least the paper's factor.
    assert measured["PLINK"] / measured["GEMM"] > 7.0
    assert measured["OmegaPlus"] / measured["GEMM"] > 3.5
