"""Figure 4: % of peak with two *different* genomic matrices (cross-LD).

Paper: computing all m x n haplotype frequencies between two regions (the
long-range-LD / distant-gene case) attains the same 84-90 % band as the
symmetric case, despite computing ~2x as many outputs.
"""

import numpy as np

from repro.core.blocking import MICRO_BLOCKING
from repro.core.ldmatrix import ld_cross
from repro.machine.perfmodel import estimate_gemm_performance
from repro.simulate.datasets import simulate_sfs_panel

K_SWEEP = (2048, 4096, 8192, 16384, 25600)
SHAPES = ((4096, 4096), (8192, 8192), (16384, 16384))


def test_fig4_cross_matrix_model(benchmark):
    def run_model():
        table = {}
        for m, n in SHAPES:
            table[(m, n)] = [
                estimate_gemm_performance(
                    m, n, (k + 63) // 64, params=MICRO_BLOCKING, symmetric=False
                ).percent_of_peak
                for k in K_SWEEP
            ]
        return table

    table = benchmark(run_model)
    print("\n=== Figure 4 - %% of peak, two different matrices (model) ===")
    print(f"{'k (samples)':>12} | " + " | ".join(f"{m}x{n:>6}" for m, n in SHAPES))
    for idx, k in enumerate(K_SWEEP):
        print(
            f"{k:>12} | "
            + " | ".join(f"{table[s][idx]:>11.1f}" for s in SHAPES)
        )
    print("paper: consistent 84-90 % despite ~2x as many output values")

    for shape in SHAPES:
        values = np.array(table[shape])
        assert np.all(values >= 84.0)
        assert np.all(values <= 95.0)

    # Twice-the-outputs criterion: the cross case executes ~2x the ops of
    # the symmetric case at the same shape, at the same efficiency.
    sym = estimate_gemm_performance(8192, 8192, 256, symmetric=True)
    cross = estimate_gemm_performance(8192, 8192, 256, symmetric=False)
    assert cross.total_ops / sym.total_ops > 1.9
    assert abs(cross.percent_of_peak - sym.percent_of_peak) < 3.0


def test_fig4_real_cross_kernel(benchmark):
    """Real-kernel check: cross-LD throughput matches symmetric throughput."""
    rng = np.random.default_rng(9)
    a = simulate_sfs_panel(4096, 192, rng=rng)
    b = simulate_sfs_panel(4096, 192, rng=rng)

    result = benchmark(lambda: ld_cross(a, b, stat="H"))
    assert result.shape == (192, 192)
    assert np.isfinite(result).all()
