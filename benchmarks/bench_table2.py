"""Table II: PLINK 1.9 vs OmegaPlus vs GEMM on Dataset B (10,000 samples).

Paper: simulated panel, 10,000 SNPs x 10,000 sequences. Here: the 1/50-scale
stand-in (200 samples x 300 SNPs). Shape criteria: same ordering as Table I
with larger GEMM-vs-PLINK factors (paper: 8.3-12.5x) as the sample dimension
grows — more packed words per SNP amortize the GEMM's per-pair overhead.
"""

from benchmarks.tablecommon import run_table_comparison

#: Execution-time rows of the paper's Table II (seconds).
PAPER_TABLE_2 = {
    "PLINK": {1: 49.20, 2: 39.11, 4: 23.98, 8: 13.60, 12: 9.78},
    "OmegaPlus": {1: 23.71, 2: 14.32, 4: 7.79, 8: 5.34, 12: 4.67},
    "GEMM": {1: 5.36, 2: 3.16, 4: 2.01, 8: 1.44, 12: 1.17},
}


def test_table2_dataset_b(benchmark, dataset_b_bench):
    measured = run_table_comparison(
        benchmark,
        dataset_b_bench,
        "Table II - Dataset B (10,000-sample shape)",
        PAPER_TABLE_2,
    )
    assert measured["PLINK"] / measured["GEMM"] > 8.0
    assert measured["OmegaPlus"] / measured["GEMM"] > 3.5
