"""Shared machinery for the benchmark harness.

Every table and figure of the paper's evaluation has one ``bench_*.py``
file; run them with::

    pytest benchmarks/ --benchmark-only -s

Wall-clock comparisons run at *reduced scale* (the pure-Python baselines are
~10³× slower than the C tools they stand in for; full-shape PLINK would take
hours) and the harness prints, side by side: the measured rows, the paper's
published rows, and the shape criteria that must hold (who wins, by roughly
what factor). Thread columns beyond one worker come from the calibrated
multicore model (this container exposes a single vCPU) — see DESIGN.md's
substitution table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoding.bitmatrix import BitMatrix
from repro.encoding.genotypes import GenotypeMatrix, genotypes_from_haplotypes
from repro.machine.cpu import IVY_BRIDGE_2S
from repro.machine.multicore import ImplementationProfile, MulticoreModel
from repro.simulate.datasets import simulate_sfs_panel

#: SNP count shared by the wall-clock table benches (paper: 10,000).
BENCH_SNPS = 300

#: Sample counts of datasets A / B / C, scaled by 1/50 (paper: 2,504 /
#: 10,000 / 100,000). Kept even so haplotypes pair into diploid genotypes.
BENCH_SAMPLES = {"A": 50, "B": 200, "C": 2000}

#: Thread counts reported in the paper's Tables I-III.
TABLE_THREADS = (1, 2, 4, 8, 12)

#: Calibrated scaling profiles (see repro.machine.multicore): utilization
#: from the paper's %-of-peak results, bandwidth/sync from its Table III.
PROFILES = {
    "GEMM": ImplementationProfile("GEMM", utilization=0.88, bandwidth_cap=39.0),
    "PLINK": ImplementationProfile("PLINK", utilization=0.20, bandwidth_cap=9.5),
    "OmegaPlus": ImplementationProfile(
        "OmegaPlus", utilization=0.45, bandwidth_cap=92.0
    ),
}

MULTICORE = MulticoreModel(machine=IVY_BRIDGE_2S)


def make_dataset(name: str, seed: int = 77) -> BitMatrix:
    """Scaled-down stand-in for the paper's dataset *name* (A/B/C)."""
    rng = np.random.default_rng(seed + ord(name))
    return simulate_sfs_panel(BENCH_SAMPLES[name], BENCH_SNPS, rng=rng)


def make_genotypes(panel: BitMatrix) -> GenotypeMatrix:
    """Pair the panel's haplotypes into diploid genotypes for PLINK."""
    return GenotypeMatrix.from_dense(genotypes_from_haplotypes(panel.to_dense()))


def pairwise_count(n_snps: int) -> int:
    """All-pairs LD count, diagonal included (the paper's N(N+1)/2)."""
    return n_snps * (n_snps + 1) // 2


def print_paper_table(
    title: str,
    measured_seconds: dict[str, float],
    paper_seconds_12t: dict[str, dict[int, float]],
    n_lds: int,
) -> None:
    """Print a Tables I-III style comparison block.

    Parameters
    ----------
    measured_seconds:
        Single-thread wall-clock per implementation (this container).
    paper_seconds_12t:
        The paper's execution-time rows, ``{impl: {threads: seconds}}``.
    n_lds:
        Pairwise LD computations performed by GEMM/PLINK.
    """
    print(f"\n=== {title} ===")
    print(f"(measured at {BENCH_SNPS} SNPs; paper used 10,000 SNPs — compare "
          "ratios and ordering, not absolute times)")
    header = (
        f"{'threads':>7} | "
        + " | ".join(f"{name + ' (s)':>14}" for name in measured_seconds)
        + " | GEMM vs PLINK | GEMM vs OmegaPlus"
    )
    print("-- modelled from measured single-thread times --")
    print(header)
    rows = {}
    for t in TABLE_THREADS:
        times = {
            name: MULTICORE.time_at(t, PROFILES[name], base)
            for name, base in measured_seconds.items()
        }
        rows[t] = times
        print(
            f"{t:>7} | "
            + " | ".join(f"{times[name]:>14.4f}" for name in measured_seconds)
            + f" | {times['PLINK'] / times['GEMM']:>13.2f}"
            + f" | {times['OmegaPlus'] / times['GEMM']:>17.2f}"
        )
    print("-- paper's published rows (10,000 SNPs, 2x E5-2620v2) --")
    print(f"{'threads':>7} | {'PLINK (s)':>14} | {'OmegaPlus (s)':>14} | "
          f"{'GEMM (s)':>14} | GEMM vs PLINK | GEMM vs OmegaPlus")
    for t in TABLE_THREADS:
        p = paper_seconds_12t["PLINK"][t]
        o = paper_seconds_12t["OmegaPlus"][t]
        g = paper_seconds_12t["GEMM"][t]
        print(
            f"{t:>7} | {p:>14.2f} | {o:>14.2f} | {g:>14.2f} | "
            f"{p / g:>13.2f} | {o / g:>17.2f}"
        )
    print(f"LD values computed (GEMM/PLINK): {n_lds:,} "
          f"(paper: {pairwise_count(10000):,})")


def check_ordering(measured_seconds: dict[str, float]) -> None:
    """The shape criterion of Tables I-III: GEMM < OmegaPlus < PLINK."""
    assert measured_seconds["GEMM"] < measured_seconds["OmegaPlus"], (
        "GEMM must beat the OmegaPlus-style baseline"
    )
    assert measured_seconds["OmegaPlus"] < measured_seconds["PLINK"], (
        "the OmegaPlus-style baseline must beat the PLINK-style baseline"
    )


@pytest.fixture(scope="session")
def dataset_a_bench() -> BitMatrix:
    return make_dataset("A")


@pytest.fixture(scope="session")
def dataset_b_bench() -> BitMatrix:
    return make_dataset("B")


@pytest.fixture(scope="session")
def dataset_c_bench() -> BitMatrix:
    return make_dataset("C")
