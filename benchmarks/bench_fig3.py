"""Figure 3: % of theoretical scalar peak vs sample dimension (GᵀG case).

Paper: on Haswell 3.5 GHz, the scalar LD kernel attains 84-90 % of the
3-ops/cycle peak as k (samples) sweeps upward, for m = n in {4096, 8192,
16384}, and the curve is agnostic to the SNP count.

Here the machine model (DESIGN.md substitution) evaluates the exact blocked
loop nest at the paper's shapes, and pytest-benchmark additionally measures
the *real* numpy kernel's achieved fraction of this container's own
effective peak to show the band is a property of the algorithm, not of one
machine.
"""

import numpy as np

from repro.core.blocking import MICRO_BLOCKING
from repro.core.ldmatrix import compute_ld
from repro.machine.perfmodel import estimate_gemm_performance
from repro.simulate.datasets import simulate_sfs_panel

#: The k sweep (sample counts); the paper sweeps to ~25,000 samples.
K_SWEEP = (2048, 4096, 6144, 8192, 12288, 16384, 20480, 25600)
M_VALUES = (4096, 8192, 16384)


def test_fig3_percent_of_peak_model(benchmark):
    def run_model():
        table = {}
        for m in M_VALUES:
            table[m] = [
                estimate_gemm_performance(
                    m, m, (k + 63) // 64, params=MICRO_BLOCKING
                ).percent_of_peak
                for k in K_SWEEP
            ]
        return table

    table = benchmark(run_model)
    print("\n=== Figure 3 - % of theoretical scalar peak (machine model) ===")
    print(f"{'k (samples)':>12} | " + " | ".join(f"m=n={m:>6}" for m in M_VALUES))
    for idx, k in enumerate(K_SWEEP):
        print(
            f"{k:>12} | "
            + " | ".join(f"{table[m][idx]:>10.1f}" for m in M_VALUES)
        )
    print("paper: 84-90 % across the sweep, rising with k, agnostic to m")

    for m in M_VALUES:
        values = np.array(table[m])
        # Band criterion (paper: 84-90; abstract quotes 84-95).
        assert np.all(values >= 84.0), values
        assert np.all(values <= 95.0), values
        # Rising-with-k criterion at the low end.
        assert values[-1] > values[0]
    # SNP-count-agnostic criterion: <2 points spread across m at fixed k.
    for idx in range(len(K_SWEEP)):
        spread = max(table[m][idx] for m in M_VALUES) - min(
            table[m][idx] for m in M_VALUES
        )
        assert spread < 2.0


def test_fig3_real_kernel_band(benchmark):
    """The numpy kernel's sustained rate is flat across k on real hardware.

    We cannot reproduce 84-90 % of *Haswell's* peak in Python, but the
    figure's qualitative content — throughput per word stays flat as the
    sample dimension grows (the "future-proof" claim) — is measurable.
    """
    rng = np.random.default_rng(5)
    n_snps = 256
    rates = {}
    for k_samples in (1024, 4096, 16384):
        panel = simulate_sfs_panel(k_samples, n_snps, rng=rng)

        def run(p=panel):
            return compute_ld(p).counts

        if k_samples == 16384:
            benchmark(run)
            import time

            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
        else:
            import time

            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
        words = (k_samples + 63) // 64
        word_ops = n_snps * (n_snps + 1) / 2 * words
        rates[k_samples] = word_ops / elapsed / 1e6
    print("\n=== Figure 3 (real kernel) - word-ops/s vs k ===")
    for k, rate in rates.items():
        print(f"k={k:>6}: {rate:8.1f} M word-ops/s")
    # Flatness: larger k must not *lose* throughput (it amortizes overhead).
    assert rates[16384] > 0.5 * rates[1024]
