"""Ablation: popcount implementation and word width inside the LD kernel.

DESIGN.md ablations #4 and #5:

- #4 — the paper picks the hardware POPCNT over software popcounts
  (its reference [17]); here every implementation from the survey drives
  the same micro-kernel inner product and is timed on identical panels.
- #5 — the paper's footnote 3 picks the 64-bit POPCNT variant over the
  32-bit one because it halves the number of operations; here the same
  bit stream is processed as uint64 words vs uint32 half-words.
"""

import numpy as np

from repro.simulate.datasets import simulate_sfs_panel
from repro.util.popcount import POPCOUNT_IMPLEMENTATIONS
from repro.util.timing import Timer


def _kernel_with_popcount(a_words, b_words, impl):
    """All-pairs inner products with a pluggable popcount (row-blocked)."""
    fn = POPCOUNT_IMPLEMENTATIONS[impl]
    m = a_words.shape[0]
    out = np.empty((m, b_words.shape[0]), dtype=np.int64)
    for i in range(m):
        joint = a_words[i][None, :] & b_words
        out[i] = fn(joint).sum(axis=1).astype(np.int64)
    return out


def test_popcount_choice_in_kernel(benchmark):
    rng = np.random.default_rng(23)
    panel = simulate_sfs_panel(4096, 128, rng=rng)
    words = panel.words

    benchmark(lambda: _kernel_with_popcount(words, words, "hardware"))
    hardware = float(benchmark.stats.stats.min)

    timings = {"hardware": hardware}
    for impl in ("lut16", "swar"):
        timer = Timer()
        with timer:
            result = _kernel_with_popcount(words, words, impl)
        timings[impl] = timer.elapsed
        np.testing.assert_array_equal(
            result, _kernel_with_popcount(words, words, "hardware")
        )

    print("\n=== Ablation: popcount implementation inside the kernel ===")
    for impl, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
        print(f"{impl:>9}: {seconds * 1e3:8.1f} ms")
    assert timings["hardware"] == min(timings.values())


def test_word_width_choice(benchmark):
    """Footnote 3: 64-bit popcount needs half the operations of 32-bit."""
    rng = np.random.default_rng(29)
    words64 = rng.integers(0, 2**63, size=1 << 21).astype(np.uint64)
    words32 = words64.view(np.uint32)

    benchmark(lambda: np.bitwise_count(words64).sum(dtype=np.int64))
    t64 = float(benchmark.stats.stats.min)

    timer = Timer()
    for _ in range(3):
        with timer:
            total32 = np.bitwise_count(words32).sum(dtype=np.int64)
    total64 = int(np.bitwise_count(words64).sum(dtype=np.int64))
    assert int(total32) == total64  # same bits, same count

    print("\n=== Ablation: 64-bit vs 32-bit popcount variant ===")
    print(f"64-bit words: {t64 * 1e3:7.2f} ms ({words64.size} ops)")
    print(f"32-bit words: {timer.best * 1e3:7.2f} ms ({words32.size} ops)")
    print(f"32/64 time ratio: {timer.best / t64:.2f} (2.0 = pure op-count effect)")
    # The 32-bit variant processes 2x the operations; it must not be faster.
    assert timer.best >= 0.95 * t64
