"""Extension bench: banded (windowed) LD scales linearly in SNP count.

Not a paper table — the scalability feature a production release of the
paper's kernel would ship (PLINK computes windowed LD for exactly this
reason). Criteria: banded work/time grows ~linearly with n (the full
matrix grows quadratically), and the banded values agree with the full
matrix on the band.
"""

import numpy as np

from repro.core.ldmatrix import ld_matrix
from repro.core.windowed import banded_ld
from repro.simulate.datasets import simulate_sfs_panel
from repro.util.timing import Timer

WINDOW = 50


def test_banded_linear_scaling(benchmark):
    rng = np.random.default_rng(61)
    samples = 1024
    times = {}
    for n_snps in (500, 1000, 2000):
        panel = simulate_sfs_panel(samples, n_snps, rng=rng)
        if n_snps == 2000:
            benchmark(lambda p=panel: banded_ld(p, window=WINDOW))
            times[n_snps] = float(benchmark.stats.stats.min)
        else:
            timer = Timer()
            for _ in range(3):
                with timer:
                    banded_ld(panel, window=WINDOW)
            times[n_snps] = timer.best

    print("\n=== Banded LD scaling (window 50, 1024 samples) ===")
    for n_snps, seconds in times.items():
        print(f"n={n_snps:>5}: {seconds * 1e3:8.1f} ms "
              f"({seconds / n_snps * 1e6:.2f} us/SNP)")
    growth = times[2000] / times[500]
    print(f"time(2000)/time(500) = {growth:.2f} (linear: 4.0, quadratic: 16.0)")
    assert growth < 8.0, "banded LD must scale sub-quadratically"


def test_banded_agrees_with_full(benchmark):
    rng = np.random.default_rng(62)
    panel = simulate_sfs_panel(512, 400, rng=rng)

    band = benchmark(lambda: banded_ld(panel, window=WINDOW))
    full = ld_matrix(panel)
    for i in range(0, 400, 37):
        for d in range(0, min(WINDOW, 399 - i) + 1, 7):
            a, b = band.values[i, d], full[i, i + d]
            assert (np.isnan(a) and np.isnan(b)) or abs(a - b) < 1e-12
