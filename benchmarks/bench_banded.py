"""Instrumented dense-vs-banded engine benchmark (and scaling tests).

Not a paper table — the scalability feature a production release of the
paper's kernel would ship (PLINK computes windowed LD for exactly this
reason). The harness times the tiled engine twice on each shape — once
dense, once with ``band=window`` — and reports dispatched GEMM
throughput (words/s), tiles pruned by the band enumeration, and the
banded speedup. Both runs write into the same diagonal-major ``(n,
W+1)`` band store, so the harness asserts the band slices are
bit-identical as a side effect of timing them. Runnable two ways:

as a script (what CI's banded-smoke job runs)::

    python benchmarks/bench_banded.py --quick --check
    python benchmarks/bench_banded.py --snps 4096 --window 512

under the pytest benchmark harness, with the other paper benches::

    pytest benchmarks/bench_banded.py --benchmark-only -s

``--check`` is the regression gate: the band enumeration must dispatch
at most 30% of the dense tile count (a pure geometry property —
deterministic on any machine) and the banded run must beat dense by at
least ``--min-speedup`` wall-clock. ``--history`` appends the
timestamped payload to ``benchmarks/BENCH_history.jsonl`` like
``bench_gemm.py``, so ``repro report`` renders the trajectory.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.banding import (  # noqa: E402
    BandSpec,
    dense_pair_cells,
    dense_tile_count,
)
from repro.core.engine import enumerate_tiles, run_engine  # noqa: E402
from repro.core.ldmatrix import ld_matrix  # noqa: E402
from repro.core.windowed import banded_ld, write_banded_block  # noqa: E402
from repro.simulate.datasets import simulate_sfs_panel  # noqa: E402
from repro.util.timing import Timer  # noqa: E402

WINDOW = 50

#: (n_samples, n_snps, window, block_snps) per benchmarked shape. The
#: window is n/8, the acceptance shape: with these tiles the band covers
#: ~26% of the dense tile count, comfortably under the 30% gate while
#: still exercising every tile class (full / partial / pruned) many
#: times over.
FULL_SHAPES = [(1024, 8192, 1024, 128)]
QUICK_SHAPES = [(256, 2048, 256, 32)]


def run_once(
    panel, *, window: int | None, store_window: int, block_snps: int,
    repeats: int = 1,
):
    """Median-of-*repeats* timed engine runs on *panel*.

    Returns ``(seconds, report, band_values)`` where *band_values* is
    the diagonal-major ``(n, store_window + 1)`` band slice of the
    output — the dense run's slice is extracted on the fly by the sink,
    so even the dense timing never materializes the O(n²) matrix. The
    median over repetitions is the standard defence against scheduler
    noise on a shared box.
    """
    n = panel.n_snps
    samples = []
    for _ in range(max(1, repeats)):
        values = np.full((n, store_window + 1), np.nan, dtype=np.float64)

        def sink(i0: int, j0: int, block: np.ndarray) -> None:
            write_banded_block(values, store_window, i0, j0, block)

        start = time.perf_counter()
        report = run_engine(
            panel, sink, engine="serial", block_snps=block_snps, band=window
        )
        elapsed = time.perf_counter() - start
        assert report.complete
        samples.append((elapsed, report, values))
    samples.sort(key=lambda s: s[0])
    return samples[(len(samples) - 1) // 2]


def bench_banded_vs_dense(
    *, n_samples: int, n_snps: int, window: int, block_snps: int,
    repeats: int = 1,
) -> list[dict]:
    """Time the dense and banded engines on one shape; return result rows.

    Asserts the banded output is bit-identical to the dense run's band
    slice (``equal_nan`` — out-of-band and monomorphic cells are NaN in
    both), so every timing doubles as a correctness check.
    """
    rng = np.random.default_rng(2016)
    panel = simulate_sfs_panel(n_samples, n_snps, rng=rng)
    k_words = panel.n_words
    band = BandSpec(window=window)
    dense_tiles = dense_tile_count(n_snps, block_snps)
    banded_work = enumerate_tiles(n_snps, block_snps, band=band)
    dense_cells = dense_pair_cells(n_snps, block_snps)
    banded_cells = sum(t.n_pairs for t in banded_work)
    print(
        f"panel: {n_snps} SNPs x {n_samples} samples, window {window}, "
        f"{block_snps}-SNP tiles (dense {dense_tiles} tiles, "
        f"banded {len(banded_work)})"
    )
    print(f"{'mode':>6} | {'seconds':>8} | {'Gword/s':>8} | {'tiles':>6} | "
          f"{'pruned':>6} | {'speedup':>7}")
    rows: list[dict] = []
    dense_s, dense_values = None, None
    for mode in ("dense", "banded"):
        seconds, report, values = run_once(
            panel, window=window if mode == "banded" else None,
            store_window=window, block_snps=block_snps, repeats=repeats,
        )
        cells = dense_cells if mode == "dense" else banded_cells
        words = cells * k_words
        if mode == "dense":
            dense_s, dense_values = seconds, values
            speedup = None
        else:
            speedup = dense_s / seconds
            if not np.array_equal(values, dense_values, equal_nan=True):
                raise AssertionError(
                    "banded engine output differs from the dense band slice"
                )
        rows.append({
            "n_snps": n_snps,
            "n_samples": n_samples,
            "k_words": k_words,
            "block_snps": block_snps,
            "window": window,
            "mode": mode,
            "repeats": repeats,
            "seconds": seconds,
            "pair_cells": cells,
            "words": words,
            "words_per_second": words / seconds,
            "n_tiles": report.n_tiles,
            "tiles_pruned": report.n_pruned,
            "tiles_partial": report.n_partial,
            "speedup_vs_dense": speedup,
        })
        print(
            f"{mode:>6} | {seconds:>8.3f} | {words / seconds / 1e9:>8.2f} | "
            f"{report.n_tiles:>6} | {report.n_pruned:>6} | "
            f"{'--' if speedup is None else format(speedup, '.2f') + 'x':>7}"
        )
    return rows


def check_rows(rows: list[dict], *, min_speedup: float) -> list[str]:
    """Regression gate: return failure messages (empty list = pass)."""
    failures: list[str] = []
    for row in rows:
        if row["mode"] != "banded":
            continue
        dense_tiles = row["n_tiles"] + row["tiles_pruned"]
        ratio = row["n_tiles"] / dense_tiles
        if ratio > 0.30:
            failures.append(
                f"n={row['n_snps']} W={row['window']}: banded enumeration "
                f"dispatched {row['n_tiles']}/{dense_tiles} tiles "
                f"({ratio:.0%}) — band pruning regressed past the 30% gate"
            )
        if row["speedup_vs_dense"] < min_speedup:
            failures.append(
                f"n={row['n_snps']} W={row['window']}: banded speedup "
                f"{row['speedup_vs_dense']:.2f}x < required "
                f"{min_speedup:.2f}x"
            )
    return failures


def write_report(rows: list[dict], path: str | Path) -> dict:
    """Serialize the accumulated rows as ``BENCH_banded.json``."""
    payload = {
        "schema": "repro-bench-banded/1",
        "model": "serial engine, dense vs band=n/8; words = dispatched "
                 "GEMM cells x k_words",
        "results": rows,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    print(f"wrote {len(rows)} result rows -> {path}")
    return payload


def append_history(payload: dict, path: str | Path) -> None:
    """Append one timestamped run record to the bench history JSONL.

    Same contract as ``bench_engine.append_history``: one full payload
    per line, so ``repro report benchmarks/BENCH_history.jsonl`` renders
    the trajectory without extra tooling.
    """
    record = dict(payload)
    record["timestamp"] = time.time()
    with Path(path).open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    print(f"appended history record -> {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small shape (CI smoke test; a few seconds)")
    parser.add_argument("--samples", type=int, default=None)
    parser.add_argument("--snps", type=int, default=None)
    parser.add_argument("--window", type=int, default=None,
                        help="band half-width in SNPs (default: snps/8)")
    parser.add_argument("--block-snps", type=int, default=128)
    parser.add_argument("--repeat", type=int, default=None, metavar="N",
                        help="repetitions per row, keeping the median "
                             "(default: 3 under --quick, else 1)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless banded tiles <= 30%% of dense and "
                             "speedup >= --min-speedup")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="wall-clock gate for --check "
                             "(default: %(default)s)")
    parser.add_argument("--json", default="BENCH_banded.json", metavar="PATH",
                        help="result file (default: %(default)s)")
    parser.add_argument("--history", default=None, metavar="JSONL",
                        help="also append the timestamped payload to this "
                             "JSONL history file (one line per run)")
    args = parser.parse_args(argv)
    if args.samples is not None or args.snps is not None:
        snps = args.snps or 2048
        shapes = [(args.samples or 256, snps,
                   args.window or max(1, snps // 8), args.block_snps)]
    else:
        shapes = QUICK_SHAPES if args.quick else FULL_SHAPES
    repeats = args.repeat if args.repeat is not None else (
        3 if args.quick else 1
    )
    rows: list[dict] = []
    for n_samples, n_snps, window, block_snps in shapes:
        rows.extend(bench_banded_vs_dense(
            n_samples=n_samples, n_snps=n_snps, window=window,
            block_snps=block_snps, repeats=repeats,
        ))
    payload = write_report(rows, args.json)
    if args.history:
        append_history(payload, args.history)
    from repro.core.executors import stop_pools

    stop_pools()
    if args.check:
        failures = check_rows(rows, min_speedup=args.min_speedup)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}")
            return 1
        print(f"ok: check passed (tile ratio <= 30%, "
              f"speedup >= {args.min_speedup:.2f}x)")
    print("ok: banded output bit-identical to the dense band slice")
    return 0


def test_banded_linear_scaling(benchmark):
    rng = np.random.default_rng(61)
    samples = 1024
    times = {}
    for n_snps in (500, 1000, 2000):
        panel = simulate_sfs_panel(samples, n_snps, rng=rng)
        if n_snps == 2000:
            benchmark(lambda p=panel: banded_ld(p, window=WINDOW))
            times[n_snps] = float(benchmark.stats.stats.min)
        else:
            timer = Timer()
            for _ in range(3):
                with timer:
                    banded_ld(panel, window=WINDOW)
            times[n_snps] = timer.best

    print("\n=== Banded LD scaling (window 50, 1024 samples) ===")
    for n_snps, seconds in times.items():
        print(f"n={n_snps:>5}: {seconds * 1e3:8.1f} ms "
              f"({seconds / n_snps * 1e6:.2f} us/SNP)")
    growth = times[2000] / times[500]
    print(f"time(2000)/time(500) = {growth:.2f} (linear: 4.0, quadratic: 16.0)")
    assert growth < 8.0, "banded LD must scale sub-quadratically"


def test_banded_agrees_with_full(benchmark):
    rng = np.random.default_rng(62)
    panel = simulate_sfs_panel(512, 400, rng=rng)

    band = benchmark(lambda: banded_ld(panel, window=WINDOW))
    full = ld_matrix(panel)
    for i in range(0, 400, 37):
        for d in range(0, min(WINDOW, 399 - i) + 1, 7):
            a, b = band.values[i, d], full[i, i + d]
            assert (np.isnan(a) and np.isnan(b)) or abs(a - b) < 1e-12


if __name__ == "__main__":
    raise SystemExit(main())
