"""Section VII: Tanimoto 2D-fingerprint similarity on the LD kernel.

The paper's cross-domain claim: the AND/POPCNT/ADD kernel serves chemical
similarity unchanged. This bench runs an all-pairs similarity over a
simulated fingerprint database (1024-bit fingerprints, the standard ECFP
folded length) and checks throughput scales with the database squared —
i.e. it is the same O(n²·k) kernel, not a per-pair Python path.
"""

import numpy as np

from repro.analysis.tanimoto import tanimoto_matrix
from repro.util.timing import Timer

FP_BITS = 1024


def _database(n: int, density: float = 0.1, seed: int = 41) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((n, FP_BITS)) < density).astype(np.uint8)


def test_tanimoto_all_pairs(benchmark):
    db = _database(2048)
    sim = benchmark(lambda: tanimoto_matrix(db))
    seconds = float(benchmark.stats.stats.min)
    pairs = db.shape[0] ** 2
    print("\n=== Section VII - Tanimoto all-pairs similarity ===")
    print(f"database: {db.shape[0]} fingerprints x {FP_BITS} bits")
    print(f"rate: {pairs / seconds / 1e6:.1f} M comparisons/s")
    assert sim.shape == (2048, 2048)
    np.testing.assert_allclose(np.diag(sim), 1.0)


def test_tanimoto_scales_quadratically(benchmark):
    """Doubling the database ~4x the work — the GEMM signature."""
    small = _database(512)
    large = _database(1024)

    benchmark(lambda: tanimoto_matrix(large))
    t_large = float(benchmark.stats.stats.min)

    timer = Timer()
    for _ in range(5):
        with timer:
            tanimoto_matrix(small)
    t_small = timer.best

    ratio = t_large / t_small
    print("\n=== Tanimoto scaling: 1024 vs 512 fingerprints ===")
    print(f"time ratio: {ratio:.2f} (ideal quadratic: 4.0)")
    assert 2.0 < ratio < 8.0


def test_tanimoto_query_mode(benchmark):
    """Database-vs-queries rectangular mode (virtual screening shape)."""
    db = _database(4096)
    queries = _database(64, seed=43)
    sim = benchmark(lambda: tanimoto_matrix(db, queries))
    assert sim.shape == (4096, 64)
    assert np.all((sim >= 0) & (sim <= 1))
