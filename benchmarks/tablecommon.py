"""Shared driver for the Table I/II/III benchmarks.

Each table compares PLINK 1.9, OmegaPlus, and the GEMM approach on one
dataset across thread counts. The driver measures single-thread wall-clock
for all three implementations on the scaled dataset, verifies the paper's
ordering (GEMM fastest, PLINK slowest), prints measured + model-extrapolated
rows next to the paper's published rows, and returns the measurements.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    BENCH_SNPS,
    check_ordering,
    make_genotypes,
    pairwise_count,
    print_paper_table,
)
from repro.baselines.omegaplus import omegaplus_scan
from repro.baselines.plink import plink_r2_matrix
from repro.core.ldmatrix import compute_ld
from repro.encoding.bitmatrix import BitMatrix
from repro.util.timing import Timer

__all__ = ["run_table_comparison"]


def run_table_comparison(
    benchmark,
    panel: BitMatrix,
    title: str,
    paper_rows: dict[str, dict[int, float]],
) -> dict[str, float]:
    """Measure the three implementations and print the table block.

    The GEMM implementation runs under pytest-benchmark (several rounds);
    the per-pair baselines run once each under a plain timer — they are
    three orders of magnitude slower, exactly the gap the table shows.
    """
    genotypes = make_genotypes(panel)

    # GEMM: the paper's approach — full N(N+1)/2 r2 matrix via blocked GEMM.
    def run_gemm():
        return compute_ld(panel).r2(undefined=0.0)

    gemm_result = benchmark(run_gemm)
    gemm_seconds = float(benchmark.stats.stats.min)

    plink_timer = Timer()
    with plink_timer:
        plink_result = plink_r2_matrix(genotypes, undefined=0.0)

    omega_timer = Timer()
    with omega_timer:
        omega_result = omegaplus_scan(
            panel, grid_size=10, max_window=BENCH_SNPS
        )

    measured = {
        "PLINK": plink_timer.elapsed,
        "OmegaPlus": omega_timer.elapsed,
        "GEMM": gemm_seconds,
    }
    check_ordering(measured)

    n_lds = pairwise_count(panel.n_snps)
    print_paper_table(title, measured, paper_rows, n_lds)
    print(
        f"OmegaPlus computed {omega_result.ld_evaluations:,} of {n_lds:,} "
        "LD values (region-restricted, as in the paper)"
    )
    rate = n_lds / gemm_seconds
    print(f"GEMM single-thread rate here: {rate / 1e6:.2f} M LDs/s")

    # Sanity: the two all-pairs implementations agree statistically — the
    # genotype r2 correlates with haplotype r2 (they differ by design).
    assert gemm_result.shape == (panel.n_snps, panel.n_snps)
    assert plink_result.shape == (genotypes.n_variants, genotypes.n_variants)
    assert np.isfinite(gemm_result).all()
    return measured
