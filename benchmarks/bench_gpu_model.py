"""Future-work projection: LD on a SIMT GPU (paper Section IX).

The paper's conclusion proposes GPU acceleration and leaves open "whether
the underlying LD arithmetics can be efficiently handled by the ALUs".
The roofline model in :mod:`repro.machine.gpu` answers it for a
paper-contemporary Kepler card: CUDA's per-lane ``__popcll`` removes the
x86 extract/insert bottleneck, so LD is bandwidth-bound at thin shapes and
compute-bound once enough words per SNP amortize the traffic — with
order-of-magnitude projected speedups over the scalar-CPU model either
way.
"""

from repro.machine.gpu import TESLA_K40, estimate_ld_gpu

SHAPES = {
    "Dataset A (10k x 2,504)": (10000, 10000, (2504 + 63) // 64),
    "Dataset B (10k x 10k)": (10000, 10000, (10000 + 63) // 64),
    "Dataset C (10k x 100k)": (10000, 10000, (100000 + 63) // 64),
}


def test_gpu_projection_table(benchmark):
    def run():
        return {
            name: estimate_ld_gpu(m, n, k) for name, (m, n, k) in SHAPES.items()
        }

    results = benchmark(run)
    print(f"\n=== Future work - GPU roofline ({TESLA_K40.name}) ===")
    print(f"{'shape':>24} | {'bound':>8} | {'seconds':>9} | speedup vs scalar CPU")
    for name, est in results.items():
        print(
            f"{name:>24} | {est.bound:>8} | {est.seconds:>9.3f} | "
            f"{est.speedup_vs_cpu:>6.1f}x"
        )

    # The paper's premise: significant improvement is available.
    assert all(est.speedup_vs_cpu > 3.0 for est in results.values())
    # The memory-bound pressure ("LD computations are memory-bound") is
    # relative: the thinner the packed k dimension, the closer the memory
    # roof looms; the thick Dataset C is safely compute-bound.
    def pressure(est):
        return est.memory_seconds / est.compute_seconds

    assert pressure(results["Dataset A (10k x 2,504)"]) > pressure(
        results["Dataset C (10k x 100k)"]
    )
    assert results["Dataset C (10k x 100k)"].bound == "compute"
