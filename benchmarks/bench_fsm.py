"""Section VII: finite-sites LD cost relative to infinite-sites LD.

The paper bounds FSM LD at "16 times more computations than the ISM" (four
states on each side of every pair). The FSM path here is built from 25
popcount GEMMs (16 joint + 8 marginal + 1 validity); this bench measures
the realized FSM/ISM cost ratio and checks it lands in the paper's
predicted band (>4x from the state pairs, bounded by ~25x including the
marginal/validity overhead the paper's estimate folds into its worst case).
"""

import numpy as np

from repro.analysis.fsm_ld import fsm_ld_matrix
from repro.core.ldmatrix import ld_matrix
from repro.encoding.fsm import FiniteSitesMatrix
from repro.util.timing import Timer


def test_fsm_vs_ism_cost(benchmark):
    rng = np.random.default_rng(31)
    n_samples, n_snps = 2048, 96
    chars = rng.choice(list("ACGT"), size=(n_samples, n_snps))
    fsm = FiniteSitesMatrix.from_characters(chars)
    # ISM equivalent: binarize on the majority state per column.
    binary = (chars == "A").astype(np.uint8)

    result = benchmark(lambda: fsm_ld_matrix(fsm))
    fsm_seconds = float(benchmark.stats.stats.min)

    timer = Timer()
    for _ in range(3):
        with timer:
            ld_matrix(binary)
    ism_seconds = timer.best

    ratio = fsm_seconds / ism_seconds
    print("\n=== Section VII - FSM vs ISM cost ===")
    print(f"ISM (1 GEMM):   {ism_seconds * 1e3:8.1f} ms")
    print(f"FSM (25 GEMMs): {fsm_seconds * 1e3:8.1f} ms")
    print(f"ratio: {ratio:.1f}x (paper worst case: 16x for the state pairs)")
    assert 4.0 < ratio < 30.0
    assert result.shape == (n_snps, n_snps)


def test_fsm_statistic_discriminates(benchmark):
    """Statistical sanity at bench scale: linked pairs score above unlinked."""
    rng = np.random.default_rng(37)
    states = rng.choice(list("ACGT"), size=600)
    independent = rng.choice(list("ACGT"), size=600)
    chars = np.stack([states, states, independent], axis=1)
    fsm = FiniteSitesMatrix.from_characters(chars)
    t = benchmark(lambda: fsm_ld_matrix(fsm))
    assert t[0, 1] > t[0, 2]
