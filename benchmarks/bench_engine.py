"""Scaling benchmark for the sharded tiled execution engine.

Measures wall-clock and pair throughput of ``repro.core.engine`` across
its three executors (serial / threads / processes) and several worker
counts, on one simulated panel. Runnable two ways:

as a script (what CI's smoke test runs)::

    python benchmarks/bench_engine.py --quick
    python benchmarks/bench_engine.py --snps 2000 --samples 1000 --workers 4

under the pytest benchmark harness, with the other paper benches::

    pytest benchmarks/bench_engine.py --benchmark-only -s

On a single-vCPU container the parallel engines cannot beat serial (the
printout is the point: the harness reports the overhead floor); on real
multi-core hardware the processes engine amortizes its pool + shared-
memory setup once per run and scales with cores, which is the regime the
ROADMAP's production-scale target cares about.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.engine import ENGINES, enumerate_tiles, run_engine  # noqa: E402
from repro.simulate.datasets import simulate_sfs_panel  # noqa: E402


def _null_sink(i0: int, j0: int, block: np.ndarray) -> None:
    """Measure engine scheduling + compute, not sink I/O."""


def run_once(
    panel, *, engine: str, n_workers: int, block_snps: int
) -> tuple[float, int]:
    """One timed engine run; returns (seconds, tiles computed)."""
    start = time.perf_counter()
    report = run_engine(
        panel, _null_sink, engine=engine, n_workers=n_workers,
        block_snps=block_snps,
    )
    elapsed = time.perf_counter() - start
    assert report.complete
    return elapsed, report.n_computed


def bench_engine_scaling(
    *, n_samples: int, n_snps: int, block_snps: int, workers: list[int]
) -> dict[tuple[str, int], float]:
    """Time every (engine, workers) combination and print the table."""
    rng = np.random.default_rng(2016)
    panel = simulate_sfs_panel(n_samples, n_snps, rng=rng)
    n_tiles = len(enumerate_tiles(n_snps, block_snps))
    n_pairs = n_snps * (n_snps + 1) // 2
    print(
        f"panel: {n_snps} SNPs x {n_samples} samples, "
        f"{block_snps}-SNP tiles ({n_tiles} tiles, {n_pairs:,} pairs)"
    )
    print(f"{'engine':>10} | {'workers':>7} | {'seconds':>8} | "
          f"{'Mpairs/s':>8} | {'vs serial':>9}")
    results: dict[tuple[str, int], float] = {}
    serial_s = None
    for engine in ENGINES:
        for n_workers in ([1] if engine == "serial" else workers):
            seconds, computed = run_once(
                panel, engine=engine, n_workers=n_workers,
                block_snps=block_snps,
            )
            assert computed == n_tiles
            results[(engine, n_workers)] = seconds
            if serial_s is None:
                serial_s = seconds
            print(
                f"{engine:>10} | {n_workers:>7} | {seconds:>8.3f} | "
                f"{n_pairs / seconds / 1e6:>8.2f} | {serial_s / seconds:>8.2f}x"
            )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small shapes (CI smoke test; a few seconds)")
    parser.add_argument("--samples", type=int, default=1024)
    parser.add_argument("--snps", type=int, default=1200)
    parser.add_argument("--block-snps", type=int, default=256)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    args = parser.parse_args(argv)
    if args.quick:
        args.samples, args.snps, args.block_snps = 128, 220, 64
        args.workers = [2]
    results = bench_engine_scaling(
        n_samples=args.samples, n_snps=args.snps,
        block_snps=args.block_snps, workers=args.workers,
    )
    # Smoke criterion: every executor finished every tile.
    assert len(results) == 1 + 2 * len(args.workers)
    print("ok: all engines completed")
    return 0


def test_bench_engine_scaling(benchmark):
    """pytest-benchmark entry: time the processes engine at quick scale."""
    rng = np.random.default_rng(2016)
    panel = simulate_sfs_panel(128, 220, rng=rng)

    def run():
        return run_engine(
            panel, _null_sink, engine="processes", n_workers=2, block_snps=64
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.complete


if __name__ == "__main__":
    raise SystemExit(main())
