"""Scaling benchmark for the sharded tiled execution engine.

Measures wall-clock and pair throughput of ``repro.core.engine`` across
its four executors (serial / threads / processes / persistent) and
several worker counts, on two or more simulated panel shapes, and scores
every run
against the analytical Haswell model (``repro.observe.compare_to_model``
— the paper's %-of-peak framing, Figs. 3–4). Results are serialized to
``BENCH_engine.json`` so the bench trajectory accumulates run over run.
Runnable two ways:

as a script (what CI's smoke test runs)::

    python benchmarks/bench_engine.py --quick
    python benchmarks/bench_engine.py --snps 2000 --samples 1000 --workers 4

under the pytest benchmark harness, with the other paper benches::

    pytest benchmarks/bench_engine.py --benchmark-only -s

On a single-vCPU container the parallel engines cannot beat serial (the
printout is the point: the harness reports the overhead floor); on real
multi-core hardware the processes engine amortizes its pool + shared-
memory setup once per run and scales with cores, which is the regime the
ROADMAP's production-scale target cares about. The ``persistent`` row is
timed *warm* — one untimed run builds the pool first — because the
backend's contract is that steady-state runs pay zero spawn or attach
cost; its cold spawn cost is exactly one processes-style pool build.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.blocking import DEFAULT_BLOCKING  # noqa: E402
from repro.core.engine import ENGINES, enumerate_tiles, run_engine  # noqa: E402
from repro.observe import MetricsRecorder, compare_to_model  # noqa: E402
from repro.simulate.datasets import simulate_sfs_panel  # noqa: E402

#: (n_samples, n_snps, block_snps) per benchmarked shape.
FULL_SHAPES = [(1024, 1200, 256), (512, 600, 128)]
QUICK_SHAPES = [(128, 220, 64), (96, 140, 48)]


def _null_sink(i0: int, j0: int, block: np.ndarray) -> None:
    """Measure engine scheduling + compute, not sink I/O."""


def run_once(
    panel, *, engine: str, n_workers: int, block_snps: int, repeats: int = 1
) -> tuple[float, int, MetricsRecorder]:
    """Median-of-*repeats* timed engine runs; returns (s, tiles, recorder).

    Taking the median over repetitions is the standard defence against
    scheduler noise — on a shared or single-vCPU box a single timing of
    a millisecond-scale run can be off by 2-3x, which would swamp the
    executor comparison the table exists to make. (The median, not the
    minimum: a spawn-dominated executor occasionally forks unusually
    fast, so min-of-N reports a best case no steady workload sees.)
    """
    samples = []
    for _ in range(max(1, repeats)):
        recorder = MetricsRecorder()
        start = time.perf_counter()
        report = run_engine(
            panel, _null_sink, engine=engine, n_workers=n_workers,
            block_snps=block_snps, recorder=recorder,
        )
        elapsed = time.perf_counter() - start
        assert report.complete
        assert recorder.event_count("tile_computed") == report.n_computed
        samples.append((elapsed, report.n_computed, recorder))
    samples.sort(key=lambda s: s[0])
    return samples[(len(samples) - 1) // 2]


def bench_engine_scaling(
    *, n_samples: int, n_snps: int, block_snps: int, workers: list[int],
    repeats: int = 1,
) -> list[dict]:
    """Time every (engine, workers) combination and print the table.

    Returns one JSON-serializable result row per run, including measured
    pairs/s and the measured/modeled %-of-peak pair.
    """
    rng = np.random.default_rng(2016)
    panel = simulate_sfs_panel(n_samples, n_snps, rng=rng)
    packed = panel  # simulate_sfs_panel returns a BitMatrix
    n_tiles = len(enumerate_tiles(n_snps, block_snps))
    n_pairs = n_snps * (n_snps + 1) // 2
    print(
        f"panel: {n_snps} SNPs x {n_samples} samples, "
        f"{block_snps}-SNP tiles ({n_tiles} tiles, {n_pairs:,} pairs)"
    )
    print(f"{'engine':>10} | {'workers':>7} | {'seconds':>8} | "
          f"{'Mpairs/s':>8} | {'%peak':>6} | {'vs serial':>9}")
    rows: list[dict] = []
    serial_s = None
    for engine in ENGINES:
        for n_workers in ([1] if engine == "serial" else workers):
            if engine == "persistent":
                # Warm the pool untimed: steady-state throughput is the
                # backend's contract (spawn cost is paid exactly once).
                run_once(
                    panel, engine=engine, n_workers=n_workers,
                    block_snps=block_snps,
                )
            seconds, computed, recorder = run_once(
                panel, engine=engine, n_workers=n_workers,
                block_snps=block_snps, repeats=repeats,
            )
            assert computed == n_tiles
            comparison = compare_to_model(
                n_snps, n_snps, packed.n_words, seconds,
                params=DEFAULT_BLOCKING, symmetric=True,
            )
            if serial_s is None:
                serial_s = seconds
            rows.append({
                "n_snps": n_snps,
                "n_samples": n_samples,
                "k_words": packed.n_words,
                "block_snps": block_snps,
                "n_tiles": n_tiles,
                "engine": engine,
                "workers": n_workers,
                "warm": engine == "persistent",
                "repeats": repeats,
                "seconds": seconds,
                "pairs": n_pairs,
                "pairs_per_second": n_pairs / seconds,
                "measured_percent_of_peak":
                    comparison.measured_percent_of_peak,
                "modeled_percent_of_peak": comparison.modeled_percent_of_peak,
                "measured_vs_modeled": comparison.measured_vs_modeled,
                "compute_seconds_total":
                    recorder.timers["engine.tile_compute_seconds"].total,
                "deliver_seconds_total":
                    recorder.timers["engine.tile_deliver_seconds"].total,
            })
            print(
                f"{engine:>10} | {n_workers:>7} | {seconds:>8.3f} | "
                f"{n_pairs / seconds / 1e6:>8.2f} | "
                f"{comparison.measured_percent_of_peak:>6.2f} | "
                f"{serial_s / seconds:>8.2f}x"
            )
    return rows


def write_report(rows: list[dict], path: str | Path) -> dict:
    """Serialize the accumulated rows as ``BENCH_engine.json``."""
    payload = {
        "schema": "repro-bench-engine/1",
        "model": "HASWELL analytical (repro.machine), DEFAULT_BLOCKING, "
                 "scalar64 peak",
        "results": rows,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    print(f"wrote {len(rows)} result rows -> {path}")
    return payload


def append_history(payload: dict, path: str | Path) -> None:
    """Append one timestamped run record to the bench history JSONL.

    The history file accumulates across runs (CI appends on every
    engine-smoke pass), one full ``repro-bench-engine/1`` payload per
    line, so ``repro report benchmarks/BENCH_history.jsonl`` renders the
    throughput trajectory without any extra tooling.
    """
    record = dict(payload)
    record["timestamp"] = time.time()
    with Path(path).open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    print(f"appended history record -> {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small shapes (CI smoke test; a few seconds)")
    parser.add_argument("--samples", type=int, default=None)
    parser.add_argument("--snps", type=int, default=None)
    parser.add_argument("--block-snps", type=int, default=256)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--repeat", type=int, default=None, metavar="N",
                        help="repetitions per row, keeping the median "
                             "(default: 3 under --quick, else 1)")
    parser.add_argument("--json", default="BENCH_engine.json", metavar="PATH",
                        help="result file (default: %(default)s)")
    parser.add_argument("--history", default=None, metavar="JSONL",
                        help="also append the timestamped payload to this "
                             "JSONL history file (one line per run)")
    args = parser.parse_args(argv)
    if args.samples is not None or args.snps is not None:
        # Explicit single shape from the command line.
        shapes = [(args.samples or 1024, args.snps or 1200, args.block_snps)]
    else:
        shapes = QUICK_SHAPES if args.quick else FULL_SHAPES
    if args.quick:
        args.workers = [2]
    repeats = args.repeat if args.repeat is not None else (
        3 if args.quick else 1
    )
    rows: list[dict] = []
    for n_samples, n_snps, block_snps in shapes:
        rows.extend(bench_engine_scaling(
            n_samples=n_samples, n_snps=n_snps,
            block_snps=block_snps, workers=args.workers, repeats=repeats,
        ))
    # Smoke criterion: every executor finished every tile, on every shape.
    assert len(rows) == len(shapes) * (1 + 3 * len(args.workers))
    payload = write_report(rows, args.json)
    if args.history:
        append_history(payload, args.history)
    from repro.core.executors import stop_pools

    stop_pools()
    print("ok: all engines completed")
    return 0


def test_bench_engine_scaling(benchmark):
    """pytest-benchmark entry: time the processes engine at quick scale."""
    rng = np.random.default_rng(2016)
    panel = simulate_sfs_panel(128, 220, rng=rng)

    def run():
        return run_engine(
            panel, _null_sink, engine="processes", n_workers=2, block_snps=64
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.complete


if __name__ == "__main__":
    raise SystemExit(main())
