"""Figure 5: thread scaling beyond the physical core count (Dataset C).

Paper: on the 12-core (24-context) Ivy Bridge box, GEMM throughput peaks at
12 threads and *diminishes* beyond ("each thread is already achieving near
peak core performance"), while PLINK 1.9 and OmegaPlus keep improving
through SMT ("underutilization of each core").

The curve comes from the calibrated multicore model applied to each
implementation's measured single-thread rate on the scaled Dataset C; the
shape criteria (peak location, post-peak direction) are asserted.
"""

import numpy as np

from benchmarks.conftest import BENCH_SNPS, MULTICORE, PROFILES, pairwise_count
from repro.baselines.omegaplus import omegaplus_scan
from repro.baselines.plink import plink_r2_matrix
from repro.core.ldmatrix import compute_ld
from repro.machine.multicore import scaling_curve
from repro.util.timing import Timer
from benchmarks.conftest import make_genotypes

THREADS = list(range(1, 25))

#: Paper's single-thread LDs/second on Dataset C (x1e6), Table III.
PAPER_RATES_1T = {"PLINK": 0.10, "OmegaPlus": 0.22, "GEMM": 1.03}


def test_fig5_thread_scaling(benchmark, dataset_c_bench):
    panel = dataset_c_bench
    n_lds = pairwise_count(panel.n_snps)

    def run_gemm():
        return compute_ld(panel).counts

    benchmark(run_gemm)
    gemm_rate = n_lds / float(benchmark.stats.stats.min)

    plink_timer = Timer()
    with plink_timer:
        plink_r2_matrix(make_genotypes(panel), undefined=0.0)
    plink_rate = n_lds / plink_timer.elapsed

    omega_timer = Timer()
    with omega_timer:
        scan = omegaplus_scan(panel, grid_size=10, max_window=BENCH_SNPS)
    omega_rate = scan.ld_evaluations / omega_timer.elapsed

    rates_1t = {"PLINK": plink_rate, "OmegaPlus": omega_rate, "GEMM": gemm_rate}
    curves = {
        name: scaling_curve(MULTICORE, PROFILES[name], rate, THREADS)
        for name, rate in rates_1t.items()
    }

    print("\n=== Figure 5 - LDs/second vs threads (modelled, Dataset C shape) ===")
    print(f"{'threads':>7} | " + " | ".join(f"{n:>12}" for n in curves))
    for idx, t in enumerate(THREADS):
        print(
            f"{t:>7} | "
            + " | ".join(f"{curves[n][idx] / 1e6:>10.2f}M" for n in curves)
        )
    print("paper single-thread rates (x1e6 LDs/s): "
          + ", ".join(f"{k}={v}" for k, v in PAPER_RATES_1T.items()))

    gemm = np.array(curves["GEMM"])
    plink = np.array(curves["PLINK"])
    omega = np.array(curves["OmegaPlus"])

    # Shape criterion 1: GEMM peaks at the physical core count (12).
    assert int(np.argmax(gemm)) + 1 == 12
    # Shape criterion 2: GEMM diminishes beyond 12 threads.
    assert gemm[23] < gemm[11]
    # Shape criterion 3: the baselines keep improving past 12 threads.
    assert plink[23] > plink[11]
    assert omega[23] > omega[11]
    # Shape criterion 4: GEMM dominates at every thread count.
    assert np.all(gemm > plink) and np.all(gemm > omega)
    # Rate-ordering criterion matches the paper's single-thread column.
    assert rates_1t["GEMM"] > rates_1t["OmegaPlus"] > rates_1t["PLINK"]
