"""Model-validation bench: pipeline simulation vs throughput model.

The %-of-peak figures (Figs 3–4) rest on the closed-form port model of
:mod:`repro.machine.cpu`; the instruction-level simulator of
:mod:`repro.machine.trace` executes the actual micro-kernel stream cycle
by cycle. This bench sweeps kernel shapes and SIMD configurations and
checks the two agree on compute cycles to within the simulator's load
overhead — the anchor for trusting the closed-form model at paper scale
(where tracing 10¹⁰ instructions is infeasible).
"""

from repro.machine.cpu import CoreModel
from repro.machine.isa import AVX2, AVX512, SCALAR64, SSE
from repro.machine.trace import microkernel_trace, simulate_pipeline

SHAPES = [(32, 4, 4), (64, 8, 8), (32, 8, 16), (16, 16, 16)]
CONFIGS = [SCALAR64, SSE, AVX2, AVX512, AVX2.with_hw_popcount(),
           AVX512.with_hw_popcount()]


def test_pipeline_matches_throughput_model(benchmark):
    core = CoreModel()

    load_ports = 2

    def run():
        rows = []
        for k_c, m_r, n_r in SHAPES:
            words = k_c * m_r * n_r
            load_cycles = k_c * (m_r + n_r) / load_ports
            for simd in CONFIGS:
                compute = core.compute_cycles(words, words, words, simd)
                simulated = simulate_pipeline(
                    microkernel_trace(k_c, m_r, n_r, simd), core,
                    load_ports=load_ports,
                ).cycles
                rows.append((f"{k_c}x{m_r}x{n_r}", simd.name,
                             compute, load_cycles, simulated))
        return rows

    rows = benchmark(run)
    print("\n=== Pipeline simulation vs closed-form port model ===")
    print(f"{'shape':>10} | {'config':>18} | {'compute':>8} | {'loads':>6} | "
          f"{'sim cyc':>8} | sim/(c+l)")
    for shape, name, compute, loads, simulated in rows:
        ratio = simulated / (compute + loads)
        print(f"{shape:>10} | {name:>18} | {compute:>8.0f} | {loads:>6.0f} | "
              f"{simulated:>8d} | {ratio:>8.3f}")
    print("(the closed-form model charges loads to the memory hierarchy; "
          "the in-order simulator issues them inline, so its cycles sit "
          "between max(compute, loads) and compute + loads)")
    # Validation bounds: the simulated count is sandwiched between the
    # no-overlap sum and the perfect-overlap max of the two components.
    for _shape, _name, compute, loads, simulated in rows:
        assert simulated >= max(compute, loads) * 0.999
        assert simulated <= (compute + loads) * 1.02
