"""Ablation: the GotoBLAS blocked nest vs an un-blocked traversal.

DESIGN.md ablation #1/#2: blocking + packing are the paper's vehicle for
cache reuse. Two instruments:

- the machine model compares memory-hierarchy stalls of the blocked nest
  against a flat (stream-everything) traversal at the paper's shapes;
- wall-clock compares :func:`popcount_gemm` (blocked, packed) with
  :func:`popcount_gemm_flat` (single-pass broadcast) at a shape where the
  flat temporary blows past the cache.

Also sweeps the register-tile size (ablation #3): too-small tiles drown in
per-call overhead, oversized tiles spill the accumulator.
"""

import numpy as np

from repro.core.blocking import BlockingParams, DEFAULT_BLOCKING, MICRO_BLOCKING
from repro.core.gemm import gemm_operation_counts, popcount_gemm, popcount_gemm_flat
from repro.machine.cache import charge_blocked_gemm
from repro.machine.cpu import HASWELL
from repro.machine.perfmodel import estimate_gemm_performance
from repro.simulate.datasets import simulate_sfs_panel
from repro.util.timing import Timer


def test_blocked_vs_flat_wallclock(benchmark):
    rng = np.random.default_rng(17)
    panel = simulate_sfs_panel(8192, 384, rng=rng)  # 128 words per SNP
    words = panel.words

    benchmark(lambda: popcount_gemm(words, words, params=DEFAULT_BLOCKING))
    blocked = float(benchmark.stats.stats.min)

    timer = Timer()
    for _ in range(3):
        with timer:
            flat = popcount_gemm_flat(words, words)
    np.testing.assert_array_equal(
        flat, popcount_gemm(words, words, params=DEFAULT_BLOCKING)
    )

    print("\n=== Ablation: blocked vs flat traversal (wall-clock) ===")
    print(f"blocked (GotoBLAS nest): {blocked * 1e3:8.1f} ms")
    print(f"flat (single broadcast): {timer.best * 1e3:8.1f} ms")
    print(f"blocked/flat time ratio: {blocked / timer.best:.2f}")
    # In numpy the flat pass materializes an m*n*k temp; blocked must not be
    # drastically worse and its working set is 64x smaller. We assert it is
    # at least competitive (within 2.5x) while using bounded memory.
    assert blocked < 2.5 * timer.best


def test_blocked_vs_flat_model(benchmark):
    """Machine model: blocking cuts modelled DRAM traffic by >10x."""

    def run():
        m = n = 4096
        k = 256
        counts = gemm_operation_counts(m, n, k, MICRO_BLOCKING)
        blocked = charge_blocked_gemm(
            counts, MICRO_BLOCKING, HASWELL.caches, output_words=m * n
        )
        # Flat traversal: every A row re-streams all of B from DRAM.
        flat_dram = m * n * k / MICRO_BLOCKING.nr + m * k
        return blocked.dram_words, flat_dram

    blocked_dram, flat_dram = benchmark(run)
    print("\n=== Ablation: modelled DRAM words, blocked vs flat ===")
    print(f"blocked: {blocked_dram / 1e6:10.1f} M words")
    print(f"flat:    {flat_dram / 1e6:10.1f} M words")
    assert flat_dram > 10 * blocked_dram


def test_register_tile_sweep(benchmark):
    """Ablation #3: %-of-peak across micro-tile sizes (machine model)."""

    def run():
        results = {}
        for tile in (2, 4, 8, 16, 32):
            params = BlockingParams(mc=256, nc=2048, kc=256, mr=tile, nr=tile)
            est = estimate_gemm_performance(4096, 4096, 256, params=params)
            results[tile] = est.percent_of_peak
        return results

    results = benchmark(run)
    print("\n=== Ablation: register tile (mr = nr) sweep, model ===")
    for tile, pct in results.items():
        print(f"mr=nr={tile:>3}: {pct:6.1f} % of peak")
    # Tiny tiles pay per-call overhead; the curve must rise from 2 to 8.
    assert results[8] > results[2]
